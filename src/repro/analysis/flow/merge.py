"""The deterministic-merge registry: types workers may safely mutate.

The parallel campaign's bit-identity contract rests on one discipline:
anything a worker accumulates is merged *after* all workers finish, in
chip order, through an operation whose result does not depend on worker
scheduling.  The types below register the merge operation that makes
them safe; the shared-state pass (RPR3xx) exempts mutations of objects
whose static type is registered here and flags everything else.

Registering a type is a *claim* — the claim is kept honest by the
runtime determinism sanitizer (``repro campaign --sanitize``), which
hashes per-chip state at phase boundaries and fails loudly when a merge
is not actually deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MergeRule:
    """One registered type and the operation that merges it."""

    type_name: str
    via: str
    note: str = ""


#: The repo's deterministic-merge vocabulary (see repro.lab.campaign's
#: merge discipline and MetricsRegistry.merge).
DEFAULT_MERGES: tuple[MergeRule, ...] = (
    MergeRule("DataLog", "DataLog.merge", "stable shard concatenation in chip order"),
    MergeRule("Tracer", "Tracer.absorb", "span renumbering + registry merge"),
    MergeRule("MetricsRegistry", "MetricsRegistry.merge", "counters add, gauges last"),
    MergeRule("Counter", "MetricsRegistry.merge", "sums add exactly"),
    MergeRule("Gauge", "MetricsRegistry.merge", "merged value is the child's"),
    MergeRule("Histogram", "Histogram.merge_from", "counts/sums/buckets add exactly"),
    MergeRule("DerivedGauge", "MetricsRegistry.merge", "ratio of merged operands"),
    # Fleet engine (repro.lab.fleet): each shard owns a contiguous chip
    # range, so its state never crosses workers; the parent reassembles
    # shard outputs in chip order, which makes the merge scheduling-free.
    MergeRule(
        "FleetBench",
        "run_fleet_campaign",
        "per-chip logs keyed by chip index; shard outputs concatenate in chip order",
    ),
    MergeRule(
        "FleetChipSummary",
        "run_fleet_campaign",
        "immutable digest; shard lists concatenate in chip order",
    ),
    MergeRule(
        "FleetTraps",
        "run_fleet_campaign",
        "struct-of-arrays trap state is shard-private (contiguous chip range)",
    ),
    MergeRule(
        "BinnedFleetTraps",
        "run_fleet_campaign",
        "binned occupancy grid is shard-private (contiguous chip range)",
    ),
)


@dataclass
class MergeRegistry:
    """Type names whose cross-worker mutation merges deterministically."""

    rules: dict[str, MergeRule] = field(default_factory=dict)

    @classmethod
    def default(cls) -> "MergeRegistry":
        """A registry pre-loaded with the repo's known-safe types."""
        registry = cls()
        for rule in DEFAULT_MERGES:
            registry.rules[rule.type_name] = rule
        return registry

    def register(self, type_name: str, via: str, note: str = "") -> MergeRule:
        """Claim that ``type_name`` merges deterministically through ``via``.

        Re-registering with a different operation raises — two competing
        claims about the same type is a bug in the claim, not a merge.
        """
        if not type_name or not via:
            raise ConfigurationError("a merge rule needs a type name and an operation")
        existing = self.rules.get(type_name)
        if existing is not None and existing.via != via:
            raise ConfigurationError(
                f"type {type_name!r} already registered with merge "
                f"{existing.via!r}, not {via!r}"
            )
        rule = MergeRule(type_name, via, note)
        self.rules[type_name] = rule
        return rule

    def is_safe(self, type_name: str) -> bool:
        """Whether mutations of this (bare) type name are merge-covered."""
        return type_name in self.rules

    def __contains__(self, type_name: str) -> bool:
        return self.is_safe(type_name)

    def __len__(self) -> int:
        return len(self.rules)

"""RPR3xx — thread-shared mutable state reachable from campaign workers.

The parallel campaign (``repro.lab.campaign``) fans chips out to a
``ThreadPoolExecutor`` and promises bit-identity with the sequential
path.  That promise only holds if workers never race on shared state:
everything a worker writes must be worker-owned (created inside the
task, or passed in per-task) or covered by a registered deterministic
merge (:mod:`repro.analysis.flow.merge`).

This pass finds the worker entry points (first argument of every
``pool.submit(...)`` call in the project), computes the set of functions
reachable from them over the approximate call graph, and inside that set
flags the write shapes that break the contract:

==========  ==========================================================
RPR301      write to a ``global``-declared name from worker-reachable
            code — every worker races on the same module slot
RPR302      write to a class-level attribute (``Klass.attr = ...``) —
            shared by every instance across every worker
RPR303      write to a ``nonlocal`` name — workers race on the closure
            cell of the enclosing function
RPR304      in-place mutation of a module-level object (``LOG.append``,
            ``CACHE[k] = v``) whose type has no registered merge
RPR305      in-place mutation of a submit argument that is *shared*
            (its expression at the submit site does not depend on the
            per-task loop variable) and whose annotated type has no
            registered merge
==========  ==========================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.flow.merge import MergeRegistry
from repro.analysis.flow.project import ModuleInfo, Project, dotted_name
from repro.analysis.flow.values import FunctionScope, _target_names
from repro.analysis.lint.findings import Finding, Severity

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "absorb",
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "inc",
        "insert",
        "merge",
        "merge_from",
        "observe",
        "pop",
        "popitem",
        "push",
        "remove",
        "reset",
        "reverse",
        "set",
        "setdefault",
        "sort",
        "update",
    }
)

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _finding(rule_id: str, path: str, line: int, message: str, suggestion: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=path,
        line=line,
        message=message,
        suggestion=suggestion,
    )


# ---------------------------------------------------------------------- #
# worker entry discovery
# ---------------------------------------------------------------------- #


@dataclass
class WorkerEntry:
    """One worker function with the submit site that launches it."""

    qualname: str
    submitter: str
    line: int
    #: parameter name -> annotation text, for submit args classified as
    #: shared across tasks (not derived from the per-task loop variable).
    shared_params: dict[str, str] = field(default_factory=dict)


def _loop_vars(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound by loops/comprehensions — the per-task variables."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, (ast.For, ast.AsyncFor)):
            names.update(_target_names(child.target))
        elif isinstance(child, ast.comprehension):
            names.update(_target_names(child.target))
    return names


def _mentions_any(node: ast.AST, names: set[str]) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id in names
        for child in ast.walk(node)
    )


def _worker_params(info: FunctionInfo) -> list[ast.arg]:
    args = info.node.args
    return [*args.posonlyargs, *args.args]


def find_worker_entries(project: Project, graph: CallGraph) -> list[WorkerEntry]:
    """Every ``pool.submit(worker, ...)`` target in the project."""
    entries: list[WorkerEntry] = []
    for qualname in sorted(graph.functions):
        submitter = graph.functions[qualname]
        module = project.modules[submitter.module]
        loop_vars = _loop_vars(submitter.node)
        for node in ast.walk(submitter.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                continue
            worker_name = dotted_name(node.args[0])
            binding = project.resolve(module, worker_name) if worker_name else None
            if binding is None or binding.kind != "function":
                continue
            if binding.target not in graph.functions:
                continue
            worker = graph.functions[binding.target]
            entry = WorkerEntry(
                qualname=worker.qualname,
                submitter=submitter.qualname,
                line=node.lineno,
            )
            params = _worker_params(worker)
            for arg_node, param in zip(node.args[1:], params):
                if _mentions_any(arg_node, loop_vars):
                    continue  # per-task value: worker-owned
                annotation = (
                    ast.unparse(param.annotation) if param.annotation else ""
                )
                entry.shared_params[param.arg] = annotation
            entries.append(entry)
    return entries


def _annotation_is_merged(annotation: str, merges: MergeRegistry) -> bool:
    return any(word in merges for word in _WORD_RE.findall(annotation))


# ---------------------------------------------------------------------- #
# per-function checks
# ---------------------------------------------------------------------- #


class _SharedStateChecker:
    """Runs the RPR301–305 checks over one worker-reachable function."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        info: FunctionInfo,
        merges: MergeRegistry,
        shared_params: dict[str, str],
        findings: list[Finding],
    ) -> None:
        self.project = project
        self.module = module
        self.info = info
        self.merges = merges
        self.shared_params = shared_params
        self.findings = findings
        self.scope = FunctionScope(info.node)

    def run(self) -> None:
        for node in self.scope._body_nodes():
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    self._check_store(node, target)
            elif isinstance(node, ast.Call):
                self._check_mutation(node)

    # -- RPR301 / RPR302 / RPR303 / RPR304 (subscript form) ------------ #

    def _check_store(self, node: ast.stmt, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.scope.global_names:
                self._emit(
                    "RPR301",
                    node.lineno,
                    f"worker-reachable {self.info.bare_name}() writes module "
                    f"global {target.id!r}",
                    "accumulate into a worker-owned object and merge in chip "
                    "order after the pool drains",
                )
            elif target.id in self.scope.nonlocal_names:
                self._emit(
                    "RPR303",
                    node.lineno,
                    f"worker-reachable {self.info.bare_name}() writes nonlocal "
                    f"{target.id!r} — workers race on the closure cell",
                    "pass state in explicitly and return results instead of "
                    "closing over mutable scope",
                )
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            receiver = target.value.id
            if receiver == "self" or self.scope.origin_of(receiver) is not None:
                return
            binding = self.project.resolve(self.module, receiver)
            if binding is not None and binding.kind == "class":
                self._emit(
                    "RPR302",
                    node.lineno,
                    f"worker-reachable {self.info.bare_name}() writes class "
                    f"attribute {receiver}.{target.attr}, shared by every "
                    "instance across workers",
                    "store per-task state on the instance or thread it "
                    "through parameters",
                )
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            self._check_object_write(node.lineno, target.value.id, "item assignment")

    # -- RPR304 / RPR305 (method form) --------------------------------- #

    def _check_mutation(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Name)
        ):
            return
        name = func.value.id
        if name in self.shared_params:
            if not _annotation_is_merged(self.shared_params[name], self.merges):
                self._emit(
                    "RPR305",
                    node.lineno,
                    f"worker entry {self.info.bare_name}() mutates shared "
                    f"submit argument {name!r} via .{func.attr}() with no "
                    "registered deterministic merge",
                    "pass a per-task copy, or register the type's merge in "
                    "repro.analysis.flow.merge if the merge is deterministic",
                )
            return
        self._check_object_write(node.lineno, name, f".{func.attr}()")

    def _check_object_write(self, line: int, name: str, how: str) -> None:
        if name in self.scope.params or name in self.scope.locals:
            return
        binding = self.module.bindings.get(name)
        if binding is None or binding.kind != "object":
            return
        if binding.target and self.merges.is_safe(binding.target):
            return
        type_note = f" (a {binding.target})" if binding.target else ""
        self._emit(
            "RPR304",
            line,
            f"worker-reachable {self.info.bare_name}() mutates module-level "
            f"object {name!r}{type_note} via {how} with no registered "
            "deterministic merge",
            "make the accumulator worker-owned and merge in chip order, or "
            "register its merge in repro.analysis.flow.merge",
        )

    def _emit(self, rule_id: str, line: int, message: str, suggestion: str) -> None:
        self.findings.append(
            _finding(rule_id, self.module.path, line, message, suggestion)
        )


def run_shared_state_pass(
    project: Project,
    graph: CallGraph,
    merges: MergeRegistry | None = None,
) -> list[Finding]:
    """The RPR3xx findings for a loaded project, in deterministic order."""
    merges = merges if merges is not None else MergeRegistry.default()
    entries = find_worker_entries(project, graph)
    if not entries:
        return []
    shared_by_worker: dict[str, dict[str, str]] = {}
    for entry in entries:
        shared_by_worker.setdefault(entry.qualname, {}).update(entry.shared_params)
    reachable = graph.reachable(entry.qualname for entry in entries)
    findings: list[Finding] = []
    for qualname in sorted(reachable):
        info = graph.functions[qualname]
        module = project.modules[info.module]
        _SharedStateChecker(
            project,
            module,
            info,
            merges,
            shared_by_worker.get(qualname, {}),
            findings,
        ).run()
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings

"""Summary statistics for multi-chip / multi-seed experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summary(values) -> Summary:
    """Summary statistics of a 1-D sample."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError("summary needs a non-empty 1-D sample")
    return Summary(
        n=values.size,
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        minimum=float(values.min()),
        median=float(np.median(values)),
        maximum=float(values.max()),
    )


def bootstrap_ci(
    values,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Bootstrap confidence interval for the mean of a sample."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ConfigurationError("bootstrap needs a 1-D sample with >= 2 points")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(low), float(high)

"""Summary statistics for multi-chip / multi-seed experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summary(values) -> Summary:
    """Summary statistics of a 1-D sample."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError("summary needs a non-empty 1-D sample")
    return Summary(
        n=values.size,
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        minimum=float(values.min()),
        median=float(np.median(values)),
        maximum=float(values.max()),
    )


def wilson_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The interval of choice for the small-``n`` proportions dependability
    sweeps produce (2 quarantined of 5 chips, 1 failed cell of 24): unlike
    the normal approximation it never leaves [0, 1] and stays honest at
    k = 0 or k = n.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be within [0, {trials}], got {successes}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    from statistics import NormalDist

    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    n = float(trials)
    p = successes / n
    denominator = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denominator
    margin = (z / denominator) * np.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    return float(max(0.0, centre - margin)), float(min(1.0, centre + margin))


def bootstrap_ci(
    values,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Bootstrap confidence interval for the mean of a sample."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ConfigurationError("bootstrap needs a 1-D sample with >= 2 points")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(low), float(high)

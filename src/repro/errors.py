"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model, instrument or schedule was configured with invalid values."""


class ScheduleError(ConfigurationError):
    """A stress/recovery schedule is malformed (overlaps, negative time...)."""


class InstrumentError(ReproError):
    """A virtual lab instrument was driven outside its operating envelope."""


class MeasurementError(ReproError):
    """A measurement could not be taken or produced an out-of-range value."""


class CounterOverflowError(MeasurementError):
    """The ring-oscillator readout counter exceeded its bit width."""


class ChipDropoutError(InstrumentError):
    """A chip stopped responding mid-campaign (socket, bitstream or die).

    Not retryable: once a device falls off the bench it stays off, and the
    campaign quarantines it instead of crashing.
    """


class RetryExhaustedError(MeasurementError):
    """A retried measurement kept failing past the policy's attempt budget."""


class CheckpointError(ReproError):
    """A campaign checkpoint directory is missing, corrupt or incompatible."""


class SweepError(ReproError):
    """A dependability sweep directory is missing, corrupt or incompatible.

    Raised for infrastructure problems of the sweep itself (bad manifest,
    spec mismatch on resume).  A *cell* that fails or times out is never
    an exception — it is recorded in the sweep manifest and the sweep
    degrades gracefully onto the surviving cells.
    """


class FittingError(ReproError):
    """Model parameter extraction failed to converge or was ill-posed."""


class SimulationError(ReproError):
    """A simulation reached an inconsistent internal state."""


class PhysicsViolationError(SimulationError):
    """A runtime physical contract was broken (see :mod:`repro.guard`).

    Raised in ``raise`` guard mode when a model quantity leaves its
    physical domain — trap occupancy outside [0, 1], a NaN delay, a
    negative oscillation frequency.  ``contract`` names the violated
    contract (e.g. ``"bti.occupancy"``) and ``bundle_path`` points at
    the crash-dump repro bundle written for replay, if one was written.
    """

    def __init__(
        self,
        message: str,
        *,
        contract: str = "",
        bundle_path: str | None = None,
    ) -> None:
        super().__init__(message)
        self.contract = contract
        self.bundle_path = bundle_path

"""Campaign health report: one self-contained HTML + JSON per campaign.

The report is the post-run counterpart of the live progress lines — it
answers "how healthy was this campaign?" from the three artefacts a run
produces: the :class:`~repro.lab.campaign.CampaignResult` (measurement
log, fresh delays, quarantines), the trace metrics (guard violations,
fault/retry/cache counters, throughput histograms) and the span tree.

Sections
--------
* campaign meta — chips, cases, measurements, sim/wall throughput;
* per-chip summary with fresh frequency and final degradation;
* per-chip frequency-degradation curves as inline SVG (paper Fig. 4/5
  view, one polyline per stress/recovery case);
* guard-violation rollup by contract;
* fault / retry / quarantine statistics with bootstrap confidence
  intervals from :mod:`repro.analysis.stats`;
* quarantine table (which chip, during which case, why);
* trap-rate cache effectiveness.

Everything lands in a JSON dict first; the HTML is a rendering of that
dict plus the charts, so the two artefacts can never disagree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.series import Series
from repro.analysis.stats import bootstrap_ci, summary
from repro.errors import ScheduleError
from repro.units import SECONDS_PER_HOUR
from repro.lab.campaign import CampaignResult
from repro.obs.query import TraceModel
from repro.report import html as H
from repro.report.svg import svg_line_chart

#: Metric families the resilience section reads (run totals).
_FAULTS = "lab.faults.injected"
_RETRIES = "lab.sample_retries"
_QUARANTINES = "campaign.quarantines"
_CACHE_PREFIX = "bti.rate_cache."
_GUARD_PREFIX = "guard.violations."
_SIM_PER_WALL = "campaign.sim_seconds_per_wall_second"


def _chip_no(chip_id: str) -> int:
    """'chip-3' -> 3 (sorts chip-10 after chip-9)."""
    try:
        return int(chip_id.rsplit("-", 1)[-1])
    except ValueError:
        return 0


def _ci_stats(values: list[float]) -> dict:
    """Summary + 95% bootstrap CI, degrading gracefully on tiny samples."""
    if not values:
        return {"n": 0}
    stats = summary(values)
    entry = {
        "n": stats.n,
        "mean": stats.mean,
        "std": stats.std,
        "min": stats.minimum,
        "median": stats.median,
        "max": stats.maximum,
    }
    if stats.n >= 2:
        low, high = bootstrap_ci(values)
        entry["ci95"] = [low, high]
    return entry


class CampaignHealthReport:
    """A built report: structured data plus its HTML rendering."""

    def __init__(self, data: dict, html_text: str) -> None:
        self.data = data
        self.html = html_text

    def to_json(self) -> str:
        """The report data as pretty-printed JSON."""
        return json.dumps(self.data, indent=2, sort_keys=True)

    def write(self, html_path: str | Path, json_path: str | Path | None = None) -> Path:
        """Write the HTML (and JSON beside it unless given its own path)."""
        html_path = Path(html_path)
        html_path.parent.mkdir(parents=True, exist_ok=True)
        html_path.write_text(self.html, encoding="utf-8")
        json_path = (
            html_path.with_suffix(".json") if json_path is None else Path(json_path)
        )
        Path(json_path).write_text(self.to_json() + "\n", encoding="utf-8")
        return html_path


def _chip_rows(result: CampaignResult) -> list[dict]:
    """Per-chip summary entries, chip order."""
    rows = []
    for chip_id in sorted(result.fresh_delays, key=_chip_no):
        records = result.log.filter(chip_id=chip_id)
        fresh_delay = result.fresh_delays[chip_id]
        fresh_frequency = 1.0 / (2.0 * fresh_delay)
        final_pct = 0.0
        if len(records) > 0:
            final_pct = 100.0 * (1.0 - records.last().frequency / fresh_frequency)
        rows.append(
            {
                "chip_id": chip_id,
                "fresh_delay_ns": 1e9 * fresh_delay,
                "fresh_frequency_mhz": fresh_frequency / 1e6,
                "measurements": len(records),
                "cases": [c for c in records.cases() if not c.startswith("BASELINE")],
                "final_degradation_pct": final_pct,
                "quarantined": chip_id in result.quarantined,
            }
        )
    return rows


def _degradation_charts(result: CampaignResult, chip_rows: list[dict]) -> list[str]:
    """One inline-SVG figure per chip with a curve per non-baseline case."""
    figures = []
    for row in chip_rows:
        series: list[Series] = []
        for case in row["cases"]:
            try:
                times, pct = result.degradation_percent_series(
                    case, _chip_no(row["chip_id"])
                )
            except ScheduleError:
                continue
            if len(times) < 2:
                continue
            series.append(Series(case, times / SECONDS_PER_HOUR, pct))
        if not series:
            continue
        chart = svg_line_chart(
            series,
            title=f"{row['chip_id']} frequency degradation",
            x_label="phase-elapsed sim hours",
            y_label="degradation %",
        )
        figures.append(
            H.figure(
                chart,
                f"{row['chip_id']}: fresh {row['fresh_frequency_mhz']:.2f} MHz, "
                f"final degradation {row['final_degradation_pct']:.3f}%",
            )
        )
    return figures


def build_campaign_report(
    result: CampaignResult,
    model: TraceModel | None = None,
    title: str = "Campaign health report",
    seed: int | None = None,
) -> CampaignHealthReport:
    """Assemble the health report from a campaign result and its trace.

    ``model`` carries the metric totals (guard / fault / cache families)
    and span statistics; pass ``TraceModel.from_tracer(tracer)`` for a
    live run or ``TraceModel.load(path)`` for an exported trace.  Without
    one the metric-backed sections render as empty-but-present, so the
    JSON schema is stable either way.
    """
    model = model if model is not None else TraceModel([], {})
    chip_rows = _chip_rows(result)

    sim_end = result.log.last().timestamp if len(result.log) > 0 else 0.0
    meta = {
        "title": title,
        "seed": seed,
        "n_chips": len(chip_rows),
        "complete": result.complete,
        "measurements": len(result.log),
        "cases": [c for c in result.log.cases() if not c.startswith("BASELINE")],
        "sim_seconds": sim_end,
        "sim_seconds_per_wall_second": model.metric_value(_SIM_PER_WALL),
        "trace_spans": len(model.spans),
    }

    guard_rows = [
        {"contract": name[len(_GUARD_PREFIX):], "violations": int(value)}
        for name, value in model.metrics_matching(_GUARD_PREFIX).items()
    ]

    per_chip_meas = [float(row["measurements"]) for row in chip_rows]
    per_chip_final = [
        row["final_degradation_pct"] for row in chip_rows if row["measurements"] > 0
    ]
    resilience = {
        "faults_injected": int(model.metric_value(_FAULTS)),
        "sample_retries": int(model.metric_value(_RETRIES)),
        "quarantines": int(model.metric_value(_QUARANTINES)) or len(result.quarantined),
        "per_chip_measurements": _ci_stats(per_chip_meas),
        "final_degradation_pct": _ci_stats(per_chip_final),
    }

    quarantine_rows = [
        {
            "chip_id": report.chip_id,
            "case": report.case,
            "sim_time_h": report.sim_time / SECONDS_PER_HOUR,
            "reason": report.reason,
        }
        for _, report in sorted(result.quarantined.items(), key=lambda kv: _chip_no(kv[0]))
    ]

    hits = model.metric_value(_CACHE_PREFIX + "hits")
    partial = model.metric_value(_CACHE_PREFIX + "partial_hits")
    misses = model.metric_value(_CACHE_PREFIX + "misses")
    lookups = hits + partial + misses
    cache = {
        "hits": int(hits),
        "partial_hits": int(partial),
        "misses": int(misses),
        "lookups": int(lookups),
        "hit_rate": hits / lookups if lookups > 0 else 0.0,
    }

    data = {
        "meta": meta,
        "chips": chip_rows,
        "guard_violations": guard_rows,
        "resilience": resilience,
        "quarantined": quarantine_rows,
        "rate_cache": cache,
    }
    return CampaignHealthReport(data, _render_html(data, result, chip_rows))


def _ci_text(entry: dict) -> str:
    """'mean 124.4 [120.1, 129.0]' or 'n/a' for empty samples."""
    if entry.get("n", 0) == 0:
        return "n/a"
    text = f"mean {entry['mean']:,.2f}"
    if "ci95" in entry:
        low, high = entry["ci95"]
        text += f"  (95% CI [{low:,.2f}, {high:,.2f}])"
    return text


def _render_html(
    data: dict, result: CampaignResult, chip_rows: list[dict]
) -> str:
    meta = data["meta"]
    sections: list[str] = []

    status = (
        '<span class="ok">complete</span>'
        if meta["complete"]
        else f'<span class="bad">{len(data["quarantined"])} chip(s) quarantined</span>'
    )
    sections.append("<h2>Campaign</h2>")
    sections.append(
        H.rows_table(
            "Campaign summary",
            ["quantity", "value"],
            [
                ["status", status],
                ["chips", meta["n_chips"]],
                ["cases", ", ".join(meta["cases"]) or "-"],
                ["measurements", meta["measurements"]],
                ["simulated", f"{meta['sim_seconds'] / SECONDS_PER_HOUR:,.1f} h"],
                [
                    "sim seconds per wall second",
                    f"{meta['sim_seconds_per_wall_second']:,.0f}",
                ],
                ["trace spans", meta["trace_spans"]],
                ["seed", meta["seed"] if meta["seed"] is not None else "-"],
            ],
        ).replace(H.escape(status), status)  # keep the styled span live
    )

    sections.append("<h2>Chips</h2>")
    sections.append(
        H.rows_table(
            "Per-chip summary",
            [
                "chip", "fresh delay ns", "fresh MHz", "measurements",
                "cases", "final degradation %", "quarantined",
            ],
            [
                [
                    row["chip_id"],
                    row["fresh_delay_ns"],
                    row["fresh_frequency_mhz"],
                    row["measurements"],
                    ", ".join(row["cases"]) or "-",
                    row["final_degradation_pct"],
                    row["quarantined"],
                ]
                for row in chip_rows
            ],
        )
    )

    sections.append("<h2>Frequency degradation</h2>")
    charts = _degradation_charts(result, chip_rows)
    if charts:
        sections.extend(charts)
    else:
        sections.append('<p class="note">No per-case measurement series recorded.</p>')

    sections.append("<h2>Guard violations</h2>")
    if data["guard_violations"]:
        sections.append(
            H.rows_table(
                "Physics-contract violations",
                ["contract", "violations"],
                [[g["contract"], g["violations"]] for g in data["guard_violations"]],
            )
        )
    else:
        sections.append('<p class="note">No guard violations recorded.</p>')

    res = data["resilience"]
    sections.append("<h2>Faults, retries and quarantines</h2>")
    sections.append(
        H.rows_table(
            "Resilience statistics",
            ["quantity", "value"],
            [
                ["faults injected", res["faults_injected"]],
                ["sample retries", res["sample_retries"]],
                ["chips quarantined", res["quarantines"]],
                ["measurements per chip", _ci_text(res["per_chip_measurements"])],
                ["final degradation % per chip", _ci_text(res["final_degradation_pct"])],
            ],
        )
    )
    if data["quarantined"]:
        sections.append(
            H.rows_table(
                "Quarantined chips",
                ["chip", "during case", "sim time h", "reason"],
                [
                    [q["chip_id"], q["case"], q["sim_time_h"], q["reason"]]
                    for q in data["quarantined"]
                ],
            )
        )

    cache = data["rate_cache"]
    sections.append("<h2>Trap-rate cache</h2>")
    sections.append(
        H.rows_table(
            "Rate-cache effectiveness",
            ["quantity", "value"],
            [
                ["lookups", cache["lookups"]],
                ["full hits", cache["hits"]],
                ["partial hits", cache["partial_hits"]],
                ["misses", cache["misses"]],
                ["hit rate", f"{100.0 * cache['hit_rate']:.1f}%"],
            ],
        )
    )

    return H.page(meta["title"], sections)

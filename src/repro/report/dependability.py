"""Dependability sweep report: one self-contained HTML + JSON per sweep.

Renders a :class:`~repro.dependability.analyzer.SweepAnalysis` into the
same two-artefact shape as the campaign health report — a JSON dict
first, the HTML as a rendering of that dict — reusing the inline-SVG
infrastructure, so the report ships as a single file with no assets.

Sections
--------
* sweep summary — grid shape, completed/degraded cells, failure-rate
  Wilson interval;
* per-cell grid table (configuration joined with outcome statistics);
* degraded-cells table with each cell's recorded error and attempts;
* confidence intervals — Wilson on cell-failure and quarantine rates,
  bootstrap on the mean projected lifetime;
* sensitivity tables, one per swept axis;
* lifetime-vs-throughput Pareto scatter over (alpha, Vdda, Ta) with the
  frontier polyline, plus the frontier table.
"""

from __future__ import annotations

from repro.dependability.analyzer import SweepAnalysis
from repro.dependability.pareto import ParetoPoint, pareto_frontier
from repro.report import html as H
from repro.report.builder import CampaignHealthReport
from repro.report.svg import svg_scatter_chart


def _knob_label(point: ParetoPoint) -> str:
    return (
        f"a={point.alpha:g}, {point.sleep_voltage:g} V, "
        f"{point.sleep_temperature_c:g} C"
    )


def _cell_entry(row) -> dict:
    """JSON entry for one grid cell."""
    cell, outcome = row.cell, row.outcome
    entry = {
        "cell_id": cell.cell_id,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "fault_rate": cell.fault_rate,
        "dropout_prob": cell.dropout_prob,
        "upset_prob": cell.upset_prob,
        "guard_mode": cell.guard_mode,
        "alpha": cell.alpha,
        "sleep_voltage": cell.sleep_voltage,
        "sleep_temperature_c": cell.sleep_temperature_c,
        "seed": cell.seed,
        "digest": outcome.digest,
    }
    if outcome.ok:
        stats = outcome.stats
        entry.update(
            {
                "measurements": stats.get("measurements", 0),
                "quarantined": stats.get("quarantined_count", 0),
                "sample_retries": stats.get("sample_retries", 0.0),
                "guard_violations": stats.get("guard_violations_total", 0.0),
                "faults_planned": stats.get("faults_planned", 0),
                "lifetime_active_hours": stats.get("lifetime_active_hours"),
                "throughput_active_fraction": stats.get("throughput_active_fraction"),
            }
        )
    else:
        entry["error"] = outcome.error
    return entry


def build_dependability_report(
    analysis: SweepAnalysis,
    title: str = "Dependability sweep report",
) -> CampaignHealthReport:
    """Assemble the sweep report (same container as the campaign report)."""
    spec = analysis.spec
    ok_rows, degraded = analysis.ok_rows, analysis.degraded_rows
    points = pareto_frontier(analysis)

    data = {
        "meta": {
            "title": title,
            "sweep": spec.name,
            "engine": spec.engine,
            "n_cells": analysis.n_cells,
            "ok_cells": len(ok_rows),
            "degraded_cells": len(degraded),
            "n_chips_per_cell": spec.n_chips,
            "spec_digest": spec.digest(),
        },
        "confidence": {
            "cell_failure_rate_wilson95": list(analysis.cell_failure_ci),
            "quarantine_rate_wilson95": list(analysis.quarantine_ci),
            "lifetime_hours_bootstrap95": (
                list(analysis.lifetime_ci) if analysis.lifetime_ci else None
            ),
        },
        "cells": [_cell_entry(row) for row in analysis.rows],
        "degraded": [
            {
                "cell_id": row.cell.cell_id,
                "status": row.outcome.status,
                "attempts": row.outcome.attempts,
                "seed": row.cell.seed,
                "error": row.outcome.error,
            }
            for row in degraded
        ],
        "sensitivity": {
            axis: {str(value): metrics for value, metrics in marginals.items()}
            for axis, marginals in analysis.sensitivity.items()
        },
        "pareto": [
            {
                "alpha": point.alpha,
                "sleep_voltage": point.sleep_voltage,
                "sleep_temperature_c": point.sleep_temperature_c,
                "lifetime_hours": point.lifetime_hours,
                "throughput": point.throughput,
                "cells": point.cells,
                "censored": point.censored,
                "on_frontier": point.on_frontier,
            }
            for point in points
        ],
    }
    return CampaignHealthReport(data, _render_html(data, points))


def _fmt_or_dash(value, fmt: str = "{:.3g}") -> str:
    return fmt.format(value) if value is not None else "-"


def _render_html(data: dict, points: tuple[ParetoPoint, ...]) -> str:
    meta = data["meta"]
    confidence = data["confidence"]
    sections: list[str] = []

    status = (
        '<span class="ok">all cells completed</span>'
        if not meta["degraded_cells"]
        else f'<span class="bad">{meta["degraded_cells"]} cell(s) degraded</span>'
    )
    failure_low, failure_high = confidence["cell_failure_rate_wilson95"]
    sections.append("<h2>Sweep</h2>")
    summary_table = H.rows_table(
        "Sweep summary",
        ["quantity", "value"],
        [
            ["sweep", meta["sweep"]],
            ["engine", meta["engine"]],
            ["status", status],
            ["grid cells", meta["n_cells"]],
            ["completed", meta["ok_cells"]],
            ["degraded", meta["degraded_cells"]],
            ["chips per cell", meta["n_chips_per_cell"]],
            [
                "cell failure rate (Wilson 95%)",
                f"[{failure_low:.3f}, {failure_high:.3f}]",
            ],
            ["spec digest", meta["spec_digest"]],
        ],
    )
    sections.append(summary_table.replace(H.escape(status), status))

    sections.append("<h2>Cell grid</h2>")
    sections.append(
        H.rows_table(
            "Per-cell configuration and outcome",
            [
                "cell", "status", "fault/day", "dropout", "upset", "guard",
                "alpha", "Vdda", "Ta C", "quar", "retries", "violations",
                "life h", "throughput",
            ],
            [
                [
                    cell["cell_id"],
                    cell["status"],
                    cell["fault_rate"],
                    cell["dropout_prob"],
                    cell["upset_prob"],
                    cell["guard_mode"],
                    cell["alpha"],
                    cell["sleep_voltage"],
                    cell["sleep_temperature_c"],
                    cell.get("quarantined", "-"),
                    cell.get("sample_retries", "-"),
                    cell.get("guard_violations", "-"),
                    _fmt_or_dash(cell.get("lifetime_active_hours")),
                    _fmt_or_dash(cell.get("throughput_active_fraction")),
                ]
                for cell in data["cells"]
            ],
            fmt="{:,.3g}",
        )
    )

    sections.append("<h2>Degraded cells</h2>")
    if data["degraded"]:
        sections.append(
            H.rows_table(
                "Cells that failed or timed out (sweep completed on survivors)",
                ["cell", "status", "attempts", "seed", "error"],
                [
                    [d["cell_id"], d["status"], d["attempts"], d["seed"], d["error"]]
                    for d in data["degraded"]
                ],
            )
        )
    else:
        sections.append('<p class="note">Every cell completed.</p>')

    sections.append("<h2>Confidence intervals</h2>")
    quarantine_low, quarantine_high = confidence["quarantine_rate_wilson95"]
    lifetime_ci = confidence["lifetime_hours_bootstrap95"]
    sections.append(
        H.rows_table(
            "Dependability intervals (95%)",
            ["quantity", "interval"],
            [
                [
                    "cell failure rate (Wilson)",
                    f"[{failure_low:.3f}, {failure_high:.3f}]",
                ],
                [
                    "chip quarantine rate (Wilson)",
                    f"[{quarantine_low:.3f}, {quarantine_high:.3f}]",
                ],
                [
                    "mean projected lifetime h (bootstrap)",
                    f"[{lifetime_ci[0]:.2f}, {lifetime_ci[1]:.2f}]"
                    if lifetime_ci
                    else "n/a (fewer than 2 finite lifetimes)",
                ],
            ],
        )
    )

    sections.append("<h2>Sensitivity</h2>")
    if data["sensitivity"]:
        for axis, marginals in data["sensitivity"].items():
            sections.append(
                H.rows_table(
                    f"Marginal means by {axis}",
                    [
                        axis, "cells", "ok", "quarantine rate", "lifetime h",
                        "degradation s", "guard violations",
                    ],
                    [
                        [
                            value,
                            metrics["cells"],
                            metrics["ok_cells"],
                            _fmt_or_dash(metrics["quarantine_rate"]),
                            _fmt_or_dash(metrics["lifetime_hours"]),
                            _fmt_or_dash(metrics["degradation"], "{:.3e}"),
                            _fmt_or_dash(metrics["guard_violations"]),
                        ]
                        for value, metrics in marginals.items()
                    ],
                )
            )
    else:
        sections.append(
            '<p class="note">No axis was swept over more than one value.</p>'
        )

    sections.append("<h2>Recovery-knob Pareto frontier</h2>")
    if points:
        frontier_points = [p for p in points if p.on_frontier]
        chart = svg_scatter_chart(
            [(p.throughput, p.lifetime_hours, _knob_label(p)) for p in points],
            frontier=[(p.throughput, p.lifetime_hours) for p in frontier_points],
            title="Projected lifetime vs throughput",
            x_label="throughput (active fraction, alpha/(1+alpha))",
            y_label="projected active lifetime (hours)",
        )
        sections.append(
            H.figure(
                chart,
                f"{len(frontier_points)} of {len(points)} knob settings on the "
                "frontier; censored lifetimes enter at the horizon.",
            )
        )
        sections.append(
            H.rows_table(
                "Knob settings (frontier members marked)",
                [
                    "alpha", "Vdda", "Ta C", "throughput", "lifetime h",
                    "cells", "censored", "frontier",
                ],
                [
                    [
                        p.alpha,
                        p.sleep_voltage,
                        p.sleep_temperature_c,
                        p.throughput,
                        p.lifetime_hours,
                        p.cells,
                        p.censored,
                        p.on_frontier,
                    ]
                    for p in points
                ],
            )
        )
    else:
        sections.append(
            '<p class="note">No lifetime projections available '
            "(projection disabled or every cell degraded).</p>"
        )

    return H.page(meta["title"], sections)

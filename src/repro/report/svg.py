"""Inline SVG line charts for the self-contained HTML health report.

The report must be a single file with no external assets, so the charts
are plain ``<svg>`` elements built from the same
:class:`~repro.analysis.series.Series` data the ASCII plots render.  No
fonts, no scripts, no stylesheets beyond presentation attributes —
everything a browser needs ships inside the element.
"""

from __future__ import annotations

from typing import Sequence
from xml.sax.saxutils import escape

from repro.analysis.series import Series
from repro.errors import ConfigurationError

#: Series stroke colours (cycled); chosen to stay apart for 8 series.
PALETTE = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
)


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """``n`` evenly spaced tick values from lo to hi inclusive."""
    if n < 2:
        return [lo, hi]
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def svg_line_chart(
    series: Sequence[Series],
    width: int = 640,
    height: int = 260,
    title: str = "",
    x_label: str = "time",
    y_label: str = "value",
) -> str:
    """Render series into one self-contained ``<svg>`` element.

    Axes carry min/max plus intermediate ticks; each series gets a
    palette colour and a legend entry.  All coordinates are formatted to
    two decimals, so the output is deterministic across platforms.
    """
    if not series:
        raise ConfigurationError("svg_line_chart needs at least one series")
    if width < 120 or height < 80:
        raise ConfigurationError("chart must be at least 120 x 80 px")

    margin_left, margin_right = 56.0, 16.0
    margin_top = 28.0 if title else 12.0
    margin_bottom = 56.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    x_min = min(float(s.times.min()) for s in series)
    x_max = max(float(s.times.max()) for s in series)
    y_min = min(float(s.values.min()) for s in series)
    y_max = max(float(s.values.max()) for s in series)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    def sx(x: float) -> float:
        return margin_left + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return margin_top + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" font-family="sans-serif" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.2f}" y="16" text-anchor="middle" '
            f'font-size="13">{escape(title)}</text>'
        )
    # plot frame
    parts.append(
        f'<rect x="{margin_left:.2f}" y="{margin_top:.2f}" '
        f'width="{plot_w:.2f}" height="{plot_h:.2f}" fill="none" '
        f'stroke="#999" stroke-width="1"/>'
    )
    # gridlines + ticks
    for tick in _ticks(y_min, y_max):
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_left:.2f}" y1="{y:.2f}" '
            f'x2="{margin_left + plot_w:.2f}" y2="{y:.2f}" '
            f'stroke="#e0e0e0" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6:.2f}" y="{y + 3:.2f}" '
            f'text-anchor="end">{tick:.3g}</text>'
        )
    for tick in _ticks(x_min, x_max):
        x = sx(tick)
        parts.append(
            f'<text x="{x:.2f}" y="{margin_top + plot_h + 14:.2f}" '
            f'text-anchor="middle">{tick:.3g}</text>'
        )
    # axis labels
    parts.append(
        f'<text x="{margin_left + plot_w / 2:.2f}" '
        f'y="{margin_top + plot_h + 28:.2f}" text-anchor="middle">'
        f'{escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="14" y="{margin_top + plot_h / 2:.2f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {margin_top + plot_h / 2:.2f})">'
        f'{escape(y_label)}</text>'
    )
    # series
    for index, s in enumerate(series):
        colour = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{sx(float(t)):.2f},{sy(float(v)):.2f}"
            for t, v in zip(s.times, s.values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{colour}" '
            f'stroke-width="1.5"/>'
        )
    # legend (bottom row, one swatch per series)
    legend_y = height - 10.0
    x_cursor = margin_left
    for index, s in enumerate(series):
        colour = PALETTE[index % len(PALETTE)]
        parts.append(
            f'<rect x="{x_cursor:.2f}" y="{legend_y - 8:.2f}" width="10" '
            f'height="10" fill="{colour}"/>'
        )
        label = s.label if not s.units else f"{s.label} [{s.units}]"
        parts.append(
            f'<text x="{x_cursor + 14:.2f}" y="{legend_y:.2f}">'
            f'{escape(label)}</text>'
        )
        x_cursor += 14 + 7 * len(label) + 12
    parts.append("</svg>")
    return "".join(parts)


def svg_scatter_chart(
    points: Sequence[tuple[float, float, str]],
    frontier: Sequence[tuple[float, float]] = (),
    width: int = 640,
    height: int = 280,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled points (and an optional frontier polyline) as SVG.

    ``points`` are ``(x, y, label)`` triples — every point is drawn as a
    circle with its label beside it; ``frontier`` points (a subset, in
    drawing order) are connected with a dashed polyline and filled, so a
    Pareto frontier reads at a glance against the dominated cloud.  Same
    determinism contract as :func:`svg_line_chart`.
    """
    if not points:
        raise ConfigurationError("svg_scatter_chart needs at least one point")
    if width < 120 or height < 80:
        raise ConfigurationError("chart must be at least 120 x 80 px")

    margin_left, margin_right = 56.0, 16.0
    margin_top = 28.0 if title else 12.0
    margin_bottom = 44.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    xs = [float(x) for x, _, _ in points]
    ys = [float(y) for _, y, _ in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    # Pad 5% so edge points are not clipped by the frame.
    x_pad = 0.05 * (x_max - x_min) or 0.5
    y_pad = 0.05 * (y_max - y_min) or 0.5
    x_min, x_max = x_min - x_pad, x_max + x_pad
    y_min, y_max = y_min - y_pad, y_max + y_pad

    def sx(x: float) -> float:
        return margin_left + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return margin_top + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" font-family="sans-serif" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.2f}" y="16" text-anchor="middle" '
            f'font-size="13">{escape(title)}</text>'
        )
    parts.append(
        f'<rect x="{margin_left:.2f}" y="{margin_top:.2f}" '
        f'width="{plot_w:.2f}" height="{plot_h:.2f}" fill="none" '
        f'stroke="#999" stroke-width="1"/>'
    )
    for tick in _ticks(y_min, y_max):
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_left:.2f}" y1="{y:.2f}" '
            f'x2="{margin_left + plot_w:.2f}" y2="{y:.2f}" '
            f'stroke="#e0e0e0" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6:.2f}" y="{y + 3:.2f}" '
            f'text-anchor="end">{tick:.3g}</text>'
        )
    for tick in _ticks(x_min, x_max):
        x = sx(tick)
        parts.append(
            f'<text x="{x:.2f}" y="{margin_top + plot_h + 14:.2f}" '
            f'text-anchor="middle">{tick:.3g}</text>'
        )
    parts.append(
        f'<text x="{margin_left + plot_w / 2:.2f}" '
        f'y="{margin_top + plot_h + 28:.2f}" text-anchor="middle">'
        f'{escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="14" y="{margin_top + plot_h / 2:.2f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {margin_top + plot_h / 2:.2f})">'
        f'{escape(y_label)}</text>'
    )
    if len(frontier) >= 2:
        line = " ".join(
            f"{sx(float(x)):.2f},{sy(float(y)):.2f}" for x, y in frontier
        )
        parts.append(
            f'<polyline points="{line}" fill="none" stroke="{PALETTE[1]}" '
            f'stroke-width="1.5" stroke-dasharray="5,3"/>'
        )
    frontier_set = {(float(x), float(y)) for x, y in frontier}
    for x, y, label in points:
        on_frontier = (float(x), float(y)) in frontier_set
        colour = PALETTE[1] if on_frontier else PALETTE[0]
        fill = colour if on_frontier else "none"
        parts.append(
            f'<circle cx="{sx(float(x)):.2f}" cy="{sy(float(y)):.2f}" r="4" '
            f'fill="{fill}" stroke="{colour}" stroke-width="1.5"/>'
        )
        if label:
            parts.append(
                f'<text x="{sx(float(x)) + 7:.2f}" y="{sy(float(y)) - 5:.2f}">'
                f"{escape(label)}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)

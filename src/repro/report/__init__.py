"""Campaign health reports and benchmark regression tracking.

Split from :mod:`repro.obs` on purpose: ``obs`` is the low-level
instrument/trace layer that must stay import-light on the hot path,
while this package is the *consumer* side — it renders finished
campaigns into human-facing artefacts (self-contained HTML + JSON) and
keeps the benchmark ledger.
"""

from repro.report.bench import (
    BenchCheck,
    BenchVerdict,
    check,
    load_history,
    record,
    rolling_baseline,
)
from repro.report.builder import CampaignHealthReport, build_campaign_report
from repro.report.dependability import build_dependability_report
from repro.report.fleet import build_fleet_report
from repro.report.svg import svg_line_chart, svg_scatter_chart

__all__ = [
    "BenchCheck",
    "BenchVerdict",
    "CampaignHealthReport",
    "build_campaign_report",
    "build_dependability_report",
    "build_fleet_report",
    "check",
    "load_history",
    "record",
    "rolling_baseline",
    "svg_line_chart",
    "svg_scatter_chart",
]

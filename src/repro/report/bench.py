"""Append-only benchmark history with a rolling-baseline regression check.

The overhead benchmark (``benchmarks/bench_obs_overhead.py``) writes one
``BENCH_campaign.json`` per run; this module turns those one-off files
into a trend:

* :func:`record` appends the entry to ``benchmarks/history/<bench>.jsonl``
  with a monotonically increasing sequence number (no wall-clock
  timestamps — history must stay reproducible and the repo's lint
  forbids wall clocks outside ``repro.obs``; callers may pass an
  explicit ``stamp`` such as a git SHA);
* :func:`rolling_baseline` computes the median of the last *N* entries
  whose configuration (seed / chips / measurement count) matches the
  candidate, so hardware drift moves the baseline slowly while a real
  regression stands out immediately;
* :func:`check` compares a candidate run against that baseline and
  returns per-metric verdicts — **warn-only** by design: the CI step
  prints the verdicts but never fails the build on a timing metric.

Lower-is-better metrics (wall seconds) regress when they rise;
higher-is-better metrics (measurements/s, sim-s per wall-s) regress when
they fall.  Exact metrics (measurement counts) regress on any change —
those indicate the workload itself shifted, not the machine.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.tables import Table
from repro.errors import ConfigurationError

#: Default location of the history ledger, relative to the repo root.
HISTORY_DIR = Path("benchmarks") / "history"

#: Keys that identify "the same workload" — entries with different
#: config keys never share a baseline.
CONFIG_KEYS = ("bench", "seed", "n_chips")

#: metric -> direction; "down" = lower is better, "up" = higher is
#: better, "exact" = any change is suspicious.
METRIC_DIRECTIONS = {
    "campaign_wall_s": "down",
    "measurements_per_sec": "up",
    "sim_seconds_per_wall_second": "up",
    "measurements": "exact",
    "ro_evaluations": "exact",
    "trap_updates": "exact",
}

#: Relative change beyond which a timing metric is flagged.
DEFAULT_THRESHOLD = 0.10

#: Entries the rolling baseline looks back over.
DEFAULT_WINDOW = 8


def history_path(entry: dict, history_dir: str | Path = HISTORY_DIR) -> Path:
    """Ledger file for one benchmark name."""
    bench = entry.get("bench")
    if not bench:
        raise ConfigurationError("bench entry is missing its 'bench' name")
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in str(bench))
    return Path(history_dir) / f"{safe}.jsonl"


def load_history(path: str | Path) -> list[dict]:
    """All entries of one ledger, oldest first; missing file -> empty."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def record(
    entry: dict,
    history_dir: str | Path = HISTORY_DIR,
    stamp: str | None = None,
) -> Path:
    """Append one benchmark entry to its ledger, assigning ``sequence``.

    ``stamp`` is an optional caller-supplied provenance marker (git SHA,
    CI run id); it is stored verbatim, never derived from a clock.
    """
    path = history_path(entry, history_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = load_history(path)
    stored = dict(entry)
    stored["sequence"] = (
        max((int(e.get("sequence", 0)) for e in existing), default=0) + 1
    )
    if stamp is not None:
        stored["stamp"] = stamp
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(stored, sort_keys=True) + "\n")
    return path


def _same_config(a: dict, b: dict) -> bool:
    return all(a.get(key) == b.get(key) for key in CONFIG_KEYS)


def rolling_baseline(
    candidate: dict,
    history: list[dict],
    window: int = DEFAULT_WINDOW,
) -> dict[str, float] | None:
    """Median of each tracked metric over the last ``window`` matching runs.

    Returns ``None`` when no history entry shares the candidate's
    configuration — a first run has nothing to regress against.
    """
    matching = [e for e in history if _same_config(e, candidate)]
    if not matching:
        return None
    recent = matching[-window:]
    baseline: dict[str, float] = {}
    for metric in METRIC_DIRECTIONS:
        values = [float(e[metric]) for e in recent if metric in e]
        if values:
            baseline[metric] = float(statistics.median(values))
    return baseline


@dataclass(frozen=True)
class BenchVerdict:
    """One metric compared against the rolling baseline."""

    metric: str
    direction: str
    baseline: float
    candidate: float

    @property
    def rel_change(self) -> float:
        """Signed relative change vs baseline (0 baseline -> 0)."""
        if self.baseline == 0.0:  # exact sentinel: empty baseline  # repro: noqa[RPR003]
            return 0.0
        return (self.candidate - self.baseline) / self.baseline

    def regressed(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        """True when the change crosses the threshold the wrong way."""
        if self.direction == "exact":
            return self.candidate != self.baseline
        if self.direction == "down":
            return self.rel_change > threshold
        return self.rel_change < -threshold


@dataclass(frozen=True)
class BenchCheck:
    """The full regression check for one candidate run."""

    verdicts: list[BenchVerdict]
    threshold: float
    window_size: int

    @property
    def regressions(self) -> list[BenchVerdict]:
        return [v for v in self.verdicts if v.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def table(self) -> Table:
        """One row per metric: baseline, candidate, delta %, verdict."""
        table = Table(
            f"Bench regression check (±{100 * self.threshold:.0f}% over "
            f"last {self.window_size} matching runs)",
            ["metric", "dir", "baseline", "candidate", "delta %", "verdict"],
            fmt="{:,.2f}",
        )
        for v in self.verdicts:
            table.add_row(
                v.metric,
                v.direction,
                v.baseline,
                v.candidate,
                100.0 * v.rel_change,
                "REGRESSED" if v.regressed(self.threshold) else "ok",
            )
        return table


def check(
    candidate: dict,
    history_dir: str | Path = HISTORY_DIR,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> BenchCheck | None:
    """Compare a candidate entry against its rolling baseline.

    ``None`` means "no matching history yet" — callers should record the
    entry and move on rather than report a pass.
    """
    history = load_history(history_path(candidate, history_dir))
    baseline = rolling_baseline(candidate, history, window=window)
    if baseline is None:
        return None
    verdicts = [
        BenchVerdict(
            metric=metric,
            direction=METRIC_DIRECTIONS[metric],
            baseline=baseline[metric],
            candidate=float(candidate[metric]),
        )
        for metric in METRIC_DIRECTIONS
        if metric in baseline and metric in candidate
    ]
    return BenchCheck(verdicts=verdicts, threshold=threshold, window_size=window)

"""HTML building blocks for the self-contained campaign health report.

Everything here emits plain strings; the only styling is one inline
``<style>`` block in :func:`page`, so the finished report is a single
file that opens anywhere with no network access.
"""

from __future__ import annotations

from typing import Sequence
from xml.sax.saxutils import escape

from repro.analysis.tables import Table

#: The whole report's stylesheet — inlined, never linked.
STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 70em;
       color: #222; line-height: 1.45; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.7em; text-align: left; }
th { background: #eef3f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
p.note { color: #555; font-size: 0.92em; }
.ok { color: #2ca02c; font-weight: bold; }
.bad { color: #d62728; font-weight: bold; }
figure { margin: 1em 0; }
figcaption { font-size: 0.92em; color: #555; }
""".strip()


def _cell(cell: object, fmt: str) -> tuple[str, bool]:
    """(rendered text, is-numeric) for one table cell."""
    if isinstance(cell, bool):
        return ("yes" if cell else "no"), False
    if isinstance(cell, float):
        return fmt.format(cell), True
    if isinstance(cell, int):
        return f"{cell:,}", True
    return escape(str(cell)), False


def table_html(table: Table, caption: str | None = None) -> str:
    """Render an :class:`~repro.analysis.tables.Table` as an HTML table.

    Numeric cells get the ``num`` class (right-aligned tabular figures);
    the table's title becomes the caption unless overridden.
    """
    lines = ["<table>"]
    lines.append(f"<caption>{escape(caption or table.title)}</caption>")
    lines.append(
        "<tr>" + "".join(f"<th>{escape(str(c))}</th>" for c in table.columns) + "</tr>"
    )
    for row in table.rows:
        cells = []
        for cell in row:
            text, numeric = _cell(cell, table.fmt)
            cells.append(f'<td class="num">{text}</td>' if numeric else f"<td>{text}</td>")
        lines.append("<tr>" + "".join(cells) + "</tr>")
    lines.append("</table>")
    return "\n".join(lines)


def rows_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[object]],
    fmt: str = "{:,.3f}",
) -> str:
    """Shorthand: build a Table from raw rows and render it to HTML."""
    table = Table(title, list(columns), fmt=fmt)
    for row in rows:
        table.add_row(*row)
    return table_html(table)


def figure(svg: str, caption: str) -> str:
    """Wrap an inline SVG chart in a captioned ``<figure>``."""
    return f"<figure>{svg}<figcaption>{escape(caption)}</figcaption></figure>"


def page(title: str, body_sections: Sequence[str]) -> str:
    """The full self-contained HTML document."""
    body = "\n".join(body_sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>\n{STYLE}\n</style>\n</head>\n<body>\n"
        f"<h1>{escape(title)}</h1>\n{body}\n</body>\n</html>\n"
    )

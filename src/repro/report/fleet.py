"""Fleet campaign report: wafer-lot distribution and outlier statistics.

The per-chip health report (:mod:`repro.report.builder`) draws one
degradation curve per chip — readable at 5 chips, useless at 10,000.
This module is its population-scale counterpart: it folds the
:class:`~repro.lab.fleet.FleetChipSummary` digests into distribution
statistics (per schedule position and lot-wide), flags outlier chips,
and renders histograms instead of trajectories.  Same contract as the
health report: everything lands in a JSON dict first and the HTML is a
rendering of that dict, so the two artefacts can never disagree.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import Series
from repro.analysis.stats import bootstrap_ci, summary
from repro.lab.fleet import FleetCampaignResult
from repro.obs.query import TraceModel
from repro.report import html as H
from repro.report.builder import CampaignHealthReport
from repro.report.svg import svg_line_chart

#: Chips further than this many robust sigma equivalents from their
#: schedule group's median are reported as outliers.
OUTLIER_SIGMA = 3.0

#: At most this many outlier rows land in the report tables.
MAX_OUTLIER_ROWS = 20

#: Percentiles reported for every distribution.
PERCENTILES = (1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0)

_METRICS = (
    ("stress_degradation_pct", "worst stress-end degradation %"),
    ("residual_degradation_pct", "post-recovery residual degradation %"),
)

_THROUGHPUT = "campaign.fleet_measurements_per_second"


def _distribution(values: list[float]) -> dict:
    """Summary statistics + percentiles + 95% CI for one metric."""
    if not values:
        return {"n": 0}
    stats = summary(values)
    arr = np.asarray(values, dtype=float)
    entry = {
        "n": stats.n,
        "mean": stats.mean,
        "std": stats.std,
        "min": stats.minimum,
        "max": stats.maximum,
        "percentiles": {
            f"p{pct:g}": float(np.percentile(arr, pct)) for pct in PERCENTILES
        },
    }
    if stats.n >= 2:
        low, high = bootstrap_ci(values)
        entry["ci95"] = [low, high]
    return entry


#: Scale factor turning a median absolute deviation into a sigma
#: equivalent for normal data.
_MAD_TO_SIGMA = 1.4826


def _outliers(result: FleetCampaignResult, metric: str) -> list[dict]:
    """Chips beyond ``OUTLIER_SIGMA`` robust deviations on ``metric``.

    Two deliberate choices: the fence is computed per schedule position
    (chip_no), not lot-wide — the five Table 1 sequences produce five
    different typical degradations, and a lot-wide fence would flag
    every chip on the harshest sequence instead of genuinely unusual
    silicon — and the spread is the median absolute deviation scaled to
    a sigma equivalent, so an extreme chip cannot widen its own fence.
    """
    by_no: dict[int, list[float]] = {}
    for chip in result.summaries:
        by_no.setdefault(chip.chip_no, []).append(getattr(chip, metric))
    fences = {}
    for chip_no, values in by_no.items():
        arr = np.asarray(values, dtype=float)
        center = float(np.median(arr))
        spread = _MAD_TO_SIGMA * float(np.median(np.abs(arr - center)))
        fences[chip_no] = (center, spread)
    rows = []
    for chip in result.summaries:
        center, spread = fences[chip.chip_no]
        if spread <= 0.0:
            continue
        value = getattr(chip, metric)
        z = (value - center) / spread
        if abs(z) >= OUTLIER_SIGMA:
            rows.append(
                {
                    "chip_id": chip.chip_id,
                    "chip_no": chip.chip_no,
                    "value": value,
                    "group_median": center,
                    "z_score": z,
                }
            )
    rows.sort(key=lambda row: -abs(row["z_score"]))
    return rows[:MAX_OUTLIER_ROWS]


def _histogram_series(result: FleetCampaignResult, metric: str) -> list[Series]:
    """Per-schedule-position histograms of ``metric`` as plottable series."""
    by_no: dict[int, list[float]] = {}
    for chip in result.summaries:
        by_no.setdefault(chip.chip_no, []).append(getattr(chip, metric))
    lo = min(min(v) for v in by_no.values())
    hi = max(max(v) for v in by_no.values())
    if hi <= lo:
        hi = lo + 1e-9
    bins = max(10, min(60, len(result.summaries) // 20))
    edges = np.linspace(lo, hi, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    series = []
    for chip_no in sorted(by_no):
        counts, _ = np.histogram(np.asarray(by_no[chip_no], dtype=float), bins=edges)
        series.append(Series(f"chip no. {chip_no}", centers, counts.astype(float)))
    return series


def build_fleet_report(
    result: FleetCampaignResult,
    model: TraceModel | None = None,
    title: str = "Fleet campaign report",
    seed: int | None = None,
) -> CampaignHealthReport:
    """Assemble the distribution report from a fleet campaign result."""
    model = model if model is not None else TraceModel([], {})

    meta = {
        "title": title,
        "seed": seed,
        "n_chips": len(result.summaries),
        "fidelity": result.fidelity,
        "shards": result.shards,
        "complete": result.complete,
        "measurements": result.total_measurements,
        "collected_records": len(result.log),
        "measurements_per_second": model.metric_value(_THROUGHPUT),
    }

    distributions = {}
    for metric, _label in _METRICS:
        values = [getattr(chip, metric) for chip in result.summaries]
        by_no: dict[int, list[float]] = {}
        for chip in result.summaries:
            by_no.setdefault(chip.chip_no, []).append(getattr(chip, metric))
        distributions[metric] = {
            "lot": _distribution(values),
            "by_chip_no": {
                str(chip_no): _distribution(by_no[chip_no])
                for chip_no in sorted(by_no)
            },
        }

    outliers = {metric: _outliers(result, metric) for metric, _ in _METRICS}

    data = {
        "meta": meta,
        "distributions": distributions,
        "outliers": outliers,
    }
    return CampaignHealthReport(data, _render_html(data, result))


def _distribution_rows(groups: dict[str, dict]) -> list[list[object]]:
    rows = []
    for name, entry in groups.items():
        if entry.get("n", 0) == 0:
            rows.append([name, 0, "-", "-", "-", "-", "-", "-"])
            continue
        pct = entry["percentiles"]
        rows.append(
            [
                name,
                entry["n"],
                entry["mean"],
                entry["std"],
                pct["p1"],
                pct["p50"],
                pct["p99"],
                entry["max"],
            ]
        )
    return rows


def _render_html(data: dict, result: FleetCampaignResult) -> str:
    meta = data["meta"]
    sections: list[str] = []

    sections.append("<h2>Fleet</h2>")
    throughput = meta["measurements_per_second"]
    sections.append(
        H.rows_table(
            "Fleet summary",
            ["quantity", "value"],
            [
                ["chips", meta["n_chips"]],
                ["fidelity", meta["fidelity"]],
                ["shards", meta["shards"]],
                ["measurements", meta["measurements"]],
                ["records kept", meta["collected_records"]],
                [
                    "measurements per wall second",
                    f"{throughput:,.0f}" if throughput else "-",
                ],
                ["seed", meta["seed"] if meta["seed"] is not None else "-"],
            ],
        )
    )

    for metric, label in _METRICS:
        dist = data["distributions"][metric]
        sections.append(f"<h2>Distribution: {H.escape(label)}</h2>")
        groups = {"lot": dist["lot"]}
        groups.update(
            {
                f"chip no. {chip_no}": entry
                for chip_no, entry in dist["by_chip_no"].items()
            }
        )
        sections.append(
            H.rows_table(
                f"{label} — population statistics",
                ["group", "n", "mean", "std", "p1", "median", "p99", "max"],
                _distribution_rows(groups),
            )
        )
        if len(result.summaries) >= 2:
            chart = svg_line_chart(
                _histogram_series(result, metric),
                title=f"{label} histogram",
                x_label="degradation %",
                y_label="chips per bin",
            )
            sections.append(
                H.figure(
                    chart,
                    f"{label}: one curve per Table 1 schedule position "
                    f"({meta['n_chips']:,} chips total)",
                )
            )

        rows = data["outliers"][metric]
        sections.append(f"<h3>Outliers (&gt; {OUTLIER_SIGMA:g}&sigma;)</h3>")
        if rows:
            sections.append(
                H.rows_table(
                    f"{label} — outlier chips",
                    ["chip", "chip no.", "value %", "group median %", "z-score"],
                    [
                        [
                            row["chip_id"],
                            row["chip_no"],
                            row["value"],
                            row["group_median"],
                            row["z_score"],
                        ]
                        for row in rows
                    ],
                )
            )
        else:
            sections.append(
                '<p class="note">No chip beyond the sigma fence '
                "within its schedule group.</p>"
            )

    return H.page(meta["title"], sections)

"""Process variation: chip-to-chip and within-die parameter spread.

The paper stresses *different individual chips* for different cases and
notes their fresh RO frequencies differ, which is why it reports recovered
delay (RD) rather than absolute frequency.  The virtual chips reproduce
that: each chip draws a global threshold/delay offset, and every transistor
adds a local mismatch term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VariationSample:
    """Concrete variation drawn for one chip.

    ``vth_offset`` shifts every fresh threshold on the chip (volts);
    ``delay_multiplier`` scales every fresh delay component;
    ``local_delay_multipliers`` holds the per-stage mismatch factors.
    """

    vth_offset: float
    delay_multiplier: float
    local_delay_multipliers: np.ndarray


@dataclass(frozen=True)
class ProcessVariation:
    """Statistical description of the process spread.

    Parameters
    ----------
    chip_vth_sigma:
        Standard deviation of the per-chip global threshold offset (volts).
    chip_delay_sigma:
        Relative sigma of the per-chip delay multiplier.
    local_delay_sigma:
        Relative sigma of per-stage delay mismatch.
    """

    chip_vth_sigma: float = 0.010
    chip_delay_sigma: float = 0.02
    local_delay_sigma: float = 0.03

    def __post_init__(self) -> None:
        for name in ("chip_vth_sigma", "chip_delay_sigma", "local_delay_sigma"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")

    def sample(
        self, n_stages: int, rng: np.random.Generator | int | None = None
    ) -> VariationSample:
        """Draw one chip's variation for a design with ``n_stages`` stages."""
        if n_stages <= 0:
            raise ConfigurationError(f"n_stages must be positive, got {n_stages}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        multipliers = rng.normal(1.0, self.local_delay_sigma, size=n_stages)
        # A mismatch draw far in the left tail would mean a negative delay;
        # clip to a small positive floor (physically a very fast stage).
        multipliers = np.clip(multipliers, 0.5, None)
        return VariationSample(
            vth_offset=float(rng.normal(0.0, self.chip_vth_sigma)),
            delay_multiplier=float(max(rng.normal(1.0, self.chip_delay_sigma), 0.5)),
            local_delay_multipliers=multipliers,
        )


NO_VARIATION = ProcessVariation(0.0, 0.0, 0.0)

"""Technology parameters for the virtual 40 nm FPGA process.

The paper's chips are commercial 40 nm FPGAs; the constants here are
representative of that node (nominal 1.2 V core supply, ~0.4 V thresholds)
and are the single calibration point for the virtual silicon.  The
experiment layer (:mod:`repro.experiments.calibration`) builds on these
defaults so every benchmark sees one consistent process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bti.traps import TrapParameters
from repro.errors import ConfigurationError
from repro.units import celsius, nanoseconds


@dataclass(frozen=True)
class TechnologyParameters:
    """Process constants shared by every device on a chip.

    Delay constants describe one LUT stage of the ring oscillator (paper
    Fig. 3): the pass-transistor tree, the output buffer and the routing
    between LUTs, whose sum is the fresh per-stage delay.
    """

    name: str = "virtual-40nm"
    vdd_nominal: float = 1.2
    vth0_pmos: float = 0.42
    vth0_nmos: float = 0.40
    # Negative supply the chip tolerates during accelerated recovery before
    # lateral pn-junction breakdown / GIDL become a concern (paper Sec. 6.1).
    min_recovery_voltage: float = -0.6
    # Vendor-recommended operating range; the accelerated tests exceed the
    # upper limit deliberately (paper Sec. 4.3).
    recommended_temperature_range: tuple[float, float] = (celsius(-40.0), celsius(85.0))
    max_accelerated_temperature: float = celsius(125.0)
    # Fresh per-stage delay contributions (seconds).  Calibrated so a
    # 75-stage CUT has ~155 ns path delay (fosc ~ 3.2 MHz) and a 24 h
    # accelerated DC stress shifts it by ~3.5 ns, the range of the paper's
    # Fig. 8.
    pass_tree_delay: float = nanoseconds(0.62)
    buffer_delay: float = nanoseconds(0.52)
    routing_delay: float = nanoseconds(0.93)
    # Trap-population statistics per transistor, per polarity.
    nbti_traps: TrapParameters = field(default_factory=TrapParameters)
    pbti_traps: TrapParameters = field(
        default_factory=lambda: TrapParameters(
            mean_trap_count=56.0, impact_mean_volts=2.56e-3
        )
    )

    def __post_init__(self) -> None:
        if self.vdd_nominal <= max(self.vth0_pmos, self.vth0_nmos):
            raise ConfigurationError("vdd_nominal must exceed the threshold voltages")
        if self.min_recovery_voltage >= 0.0:
            raise ConfigurationError("min_recovery_voltage must be negative")
        lo, hi = self.recommended_temperature_range
        if not lo < hi <= self.max_accelerated_temperature:
            raise ConfigurationError(
                "temperature range must be ordered and within the accelerated limit"
            )

    @property
    def stage_delay(self) -> float:
        """Fresh delay of one LUT stage including routing (seconds)."""
        return self.pass_tree_delay + self.buffer_delay + self.routing_delay

    def overdrive(self, vth0: float) -> float:
        """Nominal gate overdrive ``Vdd - Vth0`` used by the delay models."""
        return self.vdd_nominal - vth0

    def check_recovery_voltage(self, voltage: float) -> None:
        """Raise if a requested sleep supply would break the junctions."""
        if voltage < self.min_recovery_voltage:
            raise ConfigurationError(
                f"recovery voltage {voltage} V is below the breakdown limit "
                f"{self.min_recovery_voltage} V for {self.name}"
            )

    def check_temperature(self, temperature: float) -> None:
        """Raise if a chamber setpoint exceeds the accelerated-test limit."""
        if temperature > self.max_accelerated_temperature:
            raise ConfigurationError(
                f"temperature {temperature} K exceeds the accelerated-test limit "
                f"{self.max_accelerated_temperature} K for {self.name}"
            )


TECH_40NM = TechnologyParameters()

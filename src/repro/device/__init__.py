"""Transistor-level building blocks: technology, delay and variation models."""

from repro.device.delay import AlphaPowerDelayModel, FirstOrderDelayShift, GateDelayModel
from repro.device.electromigration import BlackModel, EmWearState
from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.transistor import Transistor, TransistorRole
from repro.device.variation import ProcessVariation, VariationSample

__all__ = [
    "AlphaPowerDelayModel",
    "BlackModel",
    "EmWearState",
    "FirstOrderDelayShift",
    "GateDelayModel",
    "ProcessVariation",
    "TECH_40NM",
    "TechnologyParameters",
    "Transistor",
    "TransistorRole",
    "VariationSample",
]

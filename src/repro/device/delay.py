"""Gate-delay models mapping threshold shifts to delay shifts.

Two models are provided:

* :class:`FirstOrderDelayShift` — the paper's Eq. (5)-(6) linearisation,
  ``d(td) = td0 * dVth / (Vdd - Vth)``;
* :class:`AlphaPowerDelayModel` — the alpha-power saturation-current law,
  ``td ~ Vdd / (Vdd - Vth)**alpha``, kept as the higher-fidelity ablation
  (the paper acknowledges its delay estimate is first order).

Both expose the same ``delay_shift`` interface so the FPGA substrate can be
configured with either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError


class GateDelayModel(Protocol):
    """Anything that maps (td0, dVth) to a delay increase."""

    def delay_shift(
        self, td0: np.ndarray | float, dvth: np.ndarray | float
    ) -> np.ndarray | float:
        """Delay increase of a gate with fresh delay ``td0`` under ``dvth``."""
        ...


@dataclass(frozen=True)
class FirstOrderDelayShift:
    """Paper Eq. (6): ``d(td) = td0 * dVth / (Vdd - Vth0)``."""

    vdd: float
    vth0: float

    def __post_init__(self) -> None:
        if self.vdd <= self.vth0:
            raise ConfigurationError("vdd must exceed vth0 for a meaningful overdrive")

    def delay_shift(
        self, td0: np.ndarray | float, dvth: np.ndarray | float
    ) -> np.ndarray | float:
        """Linearised delay increase (same shape as the broadcast inputs)."""
        result = np.asarray(td0, dtype=float) * np.asarray(dvth, dtype=float) / (
            self.vdd - self.vth0
        )
        return float(result) if result.ndim == 0 else result


@dataclass(frozen=True)
class AlphaPowerDelayModel:
    """Alpha-power law: ``td ~ Vdd / (Vdd - Vth)**alpha``.

    ``alpha`` is the velocity-saturation index (~1.3 at 40 nm).  The delay
    shift is exact under the law rather than linearised:
    ``d(td) = td0 * (((Vdd - Vth0) / (Vdd - Vth0 - dVth))**alpha - 1)``.
    """

    vdd: float
    vth0: float
    alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.vdd <= self.vth0:
            raise ConfigurationError("vdd must exceed vth0 for a meaningful overdrive")
        if self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be >= 1, got {self.alpha}")

    def delay_shift(
        self, td0: np.ndarray | float, dvth: np.ndarray | float
    ) -> np.ndarray | float:
        """Delay increase under the alpha-power law."""
        overdrive = self.vdd - self.vth0
        dvth = np.asarray(dvth, dtype=float)
        if np.any(dvth >= overdrive):
            raise ConfigurationError(
                "dVth reached the gate overdrive; the device no longer switches"
            )
        ratio = overdrive / (overdrive - dvth)
        result = np.asarray(td0, dtype=float) * (np.power(ratio, self.alpha) - 1.0)
        return float(result) if result.ndim == 0 else result

"""Gate-delay models mapping threshold shifts to delay shifts.

Two models are provided:

* :class:`FirstOrderDelayShift` — the paper's Eq. (5)-(6) linearisation,
  ``d(td) = td0 * dVth / (Vdd - Vth)``;
* :class:`AlphaPowerDelayModel` — the alpha-power saturation-current law,
  ``td ~ Vdd / (Vdd - Vth)**alpha``, kept as the higher-fidelity ablation
  (the paper acknowledges its delay estimate is first order).

Both expose the same ``delay_shift`` interface so the FPGA substrate can be
configured with either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.guard import GuardMode, get_guard


class GateDelayModel(Protocol):
    """Anything that maps (td0, dVth) to a delay increase."""

    def delay_shift(
        self, td0: np.ndarray | float, dvth: np.ndarray | float
    ) -> np.ndarray | float:
        """Delay increase of a gate with fresh delay ``td0`` under ``dvth``."""
        ...


@dataclass(frozen=True)
class FirstOrderDelayShift:
    """Paper Eq. (6): ``d(td) = td0 * dVth / (Vdd - Vth0)``."""

    vdd: float
    vth0: float

    def __post_init__(self) -> None:
        if self.vdd <= self.vth0:
            raise ConfigurationError("vdd must exceed vth0 for a meaningful overdrive")

    def delay_shift(
        self, td0: np.ndarray | float, dvth: np.ndarray | float
    ) -> np.ndarray | float:
        """Linearised delay increase (same shape as the broadcast inputs)."""
        dvth = _checked_dvth(dvth, self.vdd - self.vth0, "FirstOrderDelayShift")
        result = np.asarray(td0, dtype=float) * dvth / (self.vdd - self.vth0)
        return float(result) if result.ndim == 0 else result


@dataclass(frozen=True)
class AlphaPowerDelayModel:
    """Alpha-power law: ``td ~ Vdd / (Vdd - Vth)**alpha``.

    ``alpha`` is the velocity-saturation index (~1.3 at 40 nm).  The delay
    shift is exact under the law rather than linearised:
    ``d(td) = td0 * (((Vdd - Vth0) / (Vdd - Vth0 - dVth))**alpha - 1)``.
    """

    vdd: float
    vth0: float
    alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.vdd <= self.vth0:
            raise ConfigurationError("vdd must exceed vth0 for a meaningful overdrive")
        if self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be >= 1, got {self.alpha}")

    def delay_shift(
        self, td0: np.ndarray | float, dvth: np.ndarray | float
    ) -> np.ndarray | float:
        """Delay increase under the alpha-power law."""
        overdrive = self.vdd - self.vth0
        dvth = _checked_dvth(dvth, overdrive, "AlphaPowerDelayModel")
        if np.any(dvth >= overdrive):
            raise ConfigurationError(
                "dVth reached the gate overdrive; the device no longer switches"
            )
        ratio = overdrive / (overdrive - dvth)
        result = np.asarray(td0, dtype=float) * (np.power(ratio, self.alpha) - 1.0)
        return float(result) if result.ndim == 0 else result


def _checked_dvth(
    dvth: np.ndarray | float, overdrive: float, model: str
) -> np.ndarray:
    """Enforce the ΔVth domain contract: non-negative and finite.

    BTI only *raises* the threshold voltage, so a negative or non-finite
    shift reaching a delay model means upstream state is corrupt.  The
    ambient guard is consulted (delay models are shared frozen values
    with no per-chip state); in campaigns the chip's own guard has
    already validated the shift, so this is the standalone-user line of
    defense.  In ``clamp`` mode the shift is additionally clipped to
    just under the overdrive, where the alpha-power model's typed
    configuration check would reject it; in ``raise`` mode that
    rejection stays a :class:`ConfigurationError`, not a violation.
    """
    dvth = np.asarray(dvth, dtype=float)
    guard = get_guard()
    if guard.checking:
        clamping = guard.mode is GuardMode.CLAMP
        ceiling = overdrive * (1.0 - 1e-9) if clamping else np.inf
        inputs = {"model": model, "overdrive": overdrive}
        if dvth.ndim == 0:
            dvth = np.asarray(
                guard.check_scalar(
                    "device.dvth", float(dvth), 0.0, ceiling, inputs=inputs
                )
            )
        else:
            if clamping and not dvth.flags.writeable:
                dvth = np.array(dvth)
            dvth = guard.check_array(
                "device.dvth", dvth, 0.0, ceiling, inputs=inputs
            )
    return dvth

"""Transistor descriptors used by the LUT and routing netlists.

A :class:`Transistor` is a *static* description — name, polarity, circuit
role and how strongly its threshold shift moves the stage delay.  The
dynamic aging state lives in the chip-wide
:class:`~repro.bti.traps.TrapPopulation`; each transistor is one "owner"
there, identified by the index the netlist assigns at construction time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bti.conditions import StressPolarity
from repro.errors import ConfigurationError


class TransistorRole(enum.Enum):
    """Where a transistor sits in the LUT/routing structure (paper Fig. 2)."""

    PASS_LEVEL1 = "pass-level1"  # input-driven first mux level (In0)
    PASS_LEVEL2 = "pass-level2"  # second mux level (In1)
    BUFFER_PULLUP = "buffer-pullup"  # output inverter PMOS
    BUFFER_PULLDOWN = "buffer-pulldown"  # output inverter NMOS
    ROUTING = "routing"  # routing-mux pass transistor


@dataclass(frozen=True)
class Transistor:
    """One aging transistor in the netlist.

    Parameters
    ----------
    name:
        Netlist name (M1..M8 inside a LUT, R1.. in routing).
    polarity:
        NBTI for PMOS, PBTI for NMOS.
    role:
        Circuit role; decides which delay component the device loads.
    delay_weight:
        Fraction of the role's fresh delay component whose sensitivity to
        ``dVth`` this device carries (paper Eq. 6 applies per device:
        ``d(td) = delay_weight * td0_component * dVth / (Vdd - Vth0)``).
    stress_fraction:
        Scale on the stress overdrive this device sees when the netlist
        marks it stressed.  1.0 for a full-rail stress; below 1.0 for the
        buffer pulldown driven by a pass-transistor weak 1 (its gate sits
        at ``Vdd - Vth_pass``).
    """

    name: str
    polarity: StressPolarity
    role: TransistorRole
    delay_weight: float = 1.0
    stress_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.delay_weight <= 1.0:
            raise ConfigurationError(
                f"delay_weight must be within [0, 1], got {self.delay_weight}"
            )
        if not 0.0 < self.stress_fraction <= 1.0:
            raise ConfigurationError(
                f"stress_fraction must be within (0, 1], got {self.stress_fraction}"
            )

    @property
    def is_pmos(self) -> bool:
        """True for PMOS (NBTI-prone) devices."""
        return self.polarity is StressPolarity.NBTI

"""Electromigration (EM): the irreversible wear the paper's model ignores.

The paper's stated limitation: "the first order model is optimistic in
that it ignores other aging effects, such as Electromigration".  EM is
metal wear — current-driven atom transport in interconnect — and unlike
BTI it has no recovery phase: sleep, negative voltages and heat do not
put copper back (heat actively makes it worse).

This module quantifies the limitation with Black's equation,

    MTTF = A * J**(-n) * exp(Ea / kT)

accumulated as fractional damage ``dt / MTTF(J, T)`` over the current/
temperature history (Miner's rule).  The benchmark uses it to show what
fraction of total wear self-healing *cannot* touch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.guard import safe_exp
from repro.units import BOLTZMANN_EV, SECONDS_PER_YEAR


@dataclass(frozen=True)
class BlackModel:
    """Black's-equation parameters for one interconnect class.

    Calibrated so a wire at the reference current density and 105 degC
    has ``reference_lifetime_years`` MTTF — the typical datasheet anchor.
    """

    current_exponent: float = 2.0
    activation_energy_ev: float = 0.85
    reference_current_density: float = 1.0  # normalised J/J0
    reference_temperature: float = 378.15  # 105 degC
    reference_lifetime_years: float = 10.0

    def __post_init__(self) -> None:
        if self.current_exponent <= 0.0:
            raise ConfigurationError("current_exponent must be positive")
        if self.reference_lifetime_years <= 0.0:
            raise ConfigurationError("reference_lifetime_years must be positive")

    def mttf(self, current_density: float, temperature: float) -> float:
        """Mean time to failure in seconds at a (J, T) operating point."""
        if current_density < 0.0:
            raise ConfigurationError("current_density must be non-negative")
        if temperature <= 0.0:
            raise ConfigurationError("temperature must be positive kelvin")
        if current_density <= 0.0:  # negatives raise above; zero current never fails
            return float("inf")
        reference = self.reference_lifetime_years * SECONDS_PER_YEAR
        j_factor = (current_density / self.reference_current_density) ** (
            -self.current_exponent
        )
        # Clamped: a cryogenic operating point must saturate the MTTF
        # rather than overflow it to inf * 0-damage NaN downstream.
        t_factor = safe_exp(
            (self.activation_energy_ev / BOLTZMANN_EV)
            * (1.0 / temperature - 1.0 / self.reference_temperature)
        )
        return float(reference * j_factor * t_factor)


class EmWearState:
    """Accumulated (irreversible) EM damage of one interconnect.

    ``damage`` is the Miner's-rule fraction of life consumed: 1.0 means
    expected failure.  There is deliberately no ``recover`` method.
    """

    def __init__(self, model: BlackModel | None = None) -> None:
        self.model = model or BlackModel()
        self._damage = 0.0

    @property
    def damage(self) -> float:
        """Fraction of EM life consumed (monotonically non-decreasing)."""
        return self._damage

    @property
    def failed(self) -> bool:
        """True once expected life is exhausted."""
        return self._damage >= 1.0

    def stress(self, duration: float, current_density: float, temperature: float) -> None:
        """Accumulate damage for ``duration`` seconds at (J, T).

        Power-gated intervals (J = 0) accumulate nothing — the only mercy
        EM grants; accelerated-recovery *heat* applied while current flows
        would make things worse, which is why healing schedules gate the
        rail first.
        """
        if duration < 0.0:
            raise ConfigurationError("duration must be non-negative")
        mttf = self.model.mttf(current_density, temperature)
        if np.isfinite(mttf):
            self._damage += duration / mttf

    def remaining_life(self, current_density: float, temperature: float) -> float:
        """Seconds of life left if (J, T) were held constant."""
        mttf = self.model.mttf(current_density, temperature)
        return float(max(0.0, (1.0 - self._damage)) * mttf)

"""Multi-chip campaign runner reproducing the paper's Table 1 schedule.

Chips on the bench are fully independent — each owns its chip, testbench
and RNG child streams — so the campaign can run them sequentially (the
default) or fan them out to worker threads with ``workers=N``.  The
parallel path is bit-identical to the sequential one for the same seed:
seed derivation, per-chip execution order and the merged log order do not
depend on how workers are scheduled.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation
from repro.errors import ScheduleError
from repro.fpga.chip import FpgaChip
from repro.lab.datalog import DataLog
from repro.lab.measurement import VirtualTestbench
from repro.lab.schedule import (
    CHIP_SEQUENCES,
    TestCase,
    TestPhase,
    baseline_phase,
    standard_case,
)
from repro.obs import NULL_PROGRESS, NULL_TRACER, ProgressReporter, Tracer, get_tracer


def _run_case_phases(
    tracer,
    cases_counter,
    bench: VirtualTestbench,
    case_name: str,
    phases: tuple[TestPhase, ...] | list[TestPhase],
    log: DataLog,
) -> None:
    """Execute one case's phases on a bench inside a ``case`` span.

    The single definition of the case-span discipline, shared by the
    sequential :class:`Campaign` methods and the parallel chip workers.
    """
    with tracer.span("case", case=case_name, chip_id=bench.chip.chip_id) as span:
        sim_start = bench.chip.elapsed
        for phase in phases:
            bench.run_phase(phase, case_name, log)
        span.set("sim_advanced", bench.chip.elapsed - sim_start)
    cases_counter.inc()


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    ``log`` holds every measurement; ``chips`` the final chip states (for
    follow-up what-if experiments); ``fresh_delays`` the per-chip fresh CUT
    delay, needed to convert absolute delay readings into delay change.
    """

    log: DataLog
    chips: dict[str, FpgaChip]
    fresh_delays: dict[str, float] = field(default_factory=dict)

    def _case_records(self, case: str, chip_no: int | None) -> DataLog:
        """Records of one case, disambiguated to a single chip.

        Several Table-1 chips run the same stress case name; a series must
        come from exactly one chip or the time axis interleaves.
        """
        records = self.log.filter(case=case)
        if chip_no is not None:
            records = records.filter(chip_id=f"chip-{chip_no}")
        if len(records) == 0:
            raise ScheduleError(f"no records for case {case!r} (chip_no={chip_no})")
        chip_ids = {record.chip_id for record in records}
        if len(chip_ids) > 1:
            raise ScheduleError(
                f"case {case!r} was run on chips {sorted(chip_ids)}; pass chip_no "
                "to select one"
            )
        return records

    def delay_change_series(
        self, case: str, chip_no: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, dTd) for a case, relative to the chip's fresh delay.

        For recovery cases the first sample (phase_elapsed 0) is the end of
        the preceding stress, so the series starts at the stressed level
        and falls — the paper's Fig. 8 view.
        """
        records = self._case_records(case, chip_no)
        times, delays = records.series("delay")
        chip_id = records.first().chip_id
        return times, delays - self.fresh_delays[chip_id]

    def degradation_percent_series(
        self, case: str, chip_no: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, frequency degradation %) — the paper's Fig. 4/5 view."""
        records = self._case_records(case, chip_no)
        times, freqs = records.series("frequency")
        chip_id = records.first().chip_id
        fresh_frequency = 1.0 / (2.0 * self.fresh_delays[chip_id])
        return times, 100.0 * (1.0 - freqs / fresh_frequency)


class Campaign:
    """A set of chips, their testbenches, and a shared data log.

    Parameters
    ----------
    n_chips:
        Chips on the bench ("chip-1" .. "chip-N"); the paper uses five.
    tech / variation:
        Shared process; each chip samples its own variation so fresh
        frequencies differ, as the paper observes.
    seed:
        Master seed; chips and bench noise get independent child streams.
    tracer:
        Telemetry sink shared by the chips and benches; defaults to the
        process tracer (a no-op unless one was installed).
    """

    def __init__(
        self,
        n_chips: int = 5,
        tech: TechnologyParameters = TECH_40NM,
        variation: ProcessVariation | None = None,
        seed: int | None = 0,
        tracer=None,
    ) -> None:
        if n_chips <= 0:
            raise ScheduleError(f"n_chips must be positive, got {n_chips}")
        master = np.random.default_rng(seed)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.log = DataLog()
        self.chips: dict[str, FpgaChip] = {}
        self.benches: dict[str, VirtualTestbench] = {}
        self._cases_run = self.tracer.counter(
            "campaign.cases", "test cases executed across campaigns"
        )
        variation = variation if variation is not None else ProcessVariation()
        for index in range(n_chips):
            chip_seed, bench_seed = master.spawn(2)
            chip_id = f"chip-{index + 1}"
            chip = FpgaChip(
                chip_id,
                tech=tech,
                variation=variation,
                seed=int(chip_seed.integers(2**31)),
                tracer=self.tracer,
            )
            self.chips[chip_id] = chip
            self.benches[chip_id] = VirtualTestbench(
                chip, rng=bench_seed, tracer=self.tracer
            )
        self.fresh_delays = {cid: chip.fresh_path_delay for cid, chip in self.chips.items()}

    def chip_id(self, chip_no: int) -> str:
        """Map a Table-1 chip number to its bench identifier."""
        chip_id = f"chip-{chip_no}"
        if chip_id not in self.chips:
            raise ScheduleError(f"no chip number {chip_no} on this bench")
        return chip_id

    def run_case(self, case: TestCase) -> None:
        """Execute a case's phases on its chip, appending to the shared log."""
        bench = self.benches[self.chip_id(case.chip_no)]
        _run_case_phases(
            self.tracer, self._cases_run, bench, case.name, case.phases, self.log
        )

    def run_baseline(self) -> None:
        """Burn every chip in (2 h at 20 degC, 1.2 V) — the paper's baseline."""
        phase = baseline_phase()
        for chip_id, bench in self.benches.items():
            _run_case_phases(
                self.tracer,
                self._cases_run,
                bench,
                f"BASELINE-{chip_id}",
                [phase],
                self.log,
            )

    def result(self) -> CampaignResult:
        """Bundle the current state into a :class:`CampaignResult`."""
        return CampaignResult(
            log=self.log, chips=dict(self.chips), fresh_delays=dict(self.fresh_delays)
        )


def _run_chip_schedule(
    chip_no: int,
    case_names: tuple[str, ...],
    include_baseline: bool,
    variation: ProcessVariation,
    chip_stream: np.random.Generator,
    bench_stream: np.random.Generator,
    instrument: bool,
) -> tuple[FpgaChip, DataLog, DataLog, "Tracer | None"]:
    """One chip's full Table 1 schedule, self-contained for a worker.

    Seed handling mirrors :class:`Campaign.__init__` exactly — the chip
    seed is drawn from ``chip_stream`` and the bench noise runs off
    ``bench_stream`` — so the records produced here are bit-identical to
    the sequential path.  Baseline and case records are returned as
    separate shards because the sequential log interleaves them
    (all baselines first, then the case sequences).
    """
    worker_tracer = Tracer() if instrument else NULL_TRACER
    chip = FpgaChip(
        f"chip-{chip_no}",
        tech=TECH_40NM,
        variation=variation,
        seed=int(chip_stream.integers(2**31)),
        tracer=worker_tracer,
    )
    bench = VirtualTestbench(chip, rng=bench_stream, tracer=worker_tracer)
    cases_counter = worker_tracer.counter(
        "campaign.cases", "test cases executed across campaigns"
    )
    baseline_log = DataLog()
    case_log = DataLog()
    if include_baseline:
        _run_case_phases(
            worker_tracer,
            cases_counter,
            bench,
            f"BASELINE-{chip.chip_id}",
            [baseline_phase()],
            baseline_log,
        )
    for name in case_names:
        case = standard_case(name, chip_no)
        _run_case_phases(
            worker_tracer, cases_counter, bench, case.name, case.phases, case_log
        )
    return chip, baseline_log, case_log, worker_tracer if instrument else None


def _parallel_table1(
    seed: int | None,
    n_chips: int,
    include_baseline: bool,
    tracer,
    progress: ProgressReporter,
    workers: int,
    sequences: dict[int, tuple[str, ...]],
) -> CampaignResult:
    """Fan the chips out to worker threads and merge deterministically.

    Threads (not processes): the trap updates are numpy array ops that
    release the GIL, and threads avoid pickling chips back.  Workers are
    merged in chip order after all complete — log order, span ids and
    counter sums never depend on scheduling.
    """
    master = np.random.default_rng(seed)
    variation = ProcessVariation()
    streams = [master.spawn(2) for _ in range(n_chips)]
    results: list = [None] * n_chips
    with ThreadPoolExecutor(max_workers=min(workers, n_chips)) as pool:
        future_to_index = {
            pool.submit(
                _run_chip_schedule,
                index + 1,
                sequences.get(index + 1, ()),
                include_baseline,
                variation,
                streams[index][0],
                streams[index][1],
                tracer.enabled,
            ): index
            for index in range(n_chips)
        }
        chips_done = 0
        for future in as_completed(future_to_index):
            index = future_to_index[future]
            results[index] = future.result()
            chips_done += 1
            progress.line(
                f"chip-{index + 1} schedule complete ({chips_done}/{n_chips} chips)"
            )
    chips: dict[str, FpgaChip] = {}
    fresh_delays: dict[str, float] = {}
    for chip, _, _, worker_tracer in results:
        chips[chip.chip_id] = chip
        fresh_delays[chip.chip_id] = chip.fresh_path_delay
        if worker_tracer is not None:
            tracer.absorb(worker_tracer)
    log = DataLog.merge(
        [baseline_log for _, baseline_log, _, _ in results]
        + [case_log for _, _, case_log, _ in results]
    )
    return CampaignResult(log=log, chips=chips, fresh_delays=fresh_delays)


def run_table1_campaign(
    seed: int | None = 0,
    n_chips: int = 5,
    include_baseline: bool = True,
    tracer=None,
    progress: ProgressReporter | None = None,
    workers: int = 1,
) -> CampaignResult:
    """Run the full Table 1 schedule and return the result.

    Chip execution order follows the paper: each chip runs its stress case
    then its recovery case; chip 5 additionally re-stresses for 48 h and
    runs the 12 h recovery (``AR110N12``).

    ``workers`` above 1 runs each chip's schedule in a worker thread; the
    merged result is bit-identical to the sequential run for the same
    seed.  ``tracer`` wraps the run in a ``campaign`` span (cases and
    phases nest under it, whichever worker ran them) and records the
    simulated-seconds-per-wall-second throughput; ``progress`` gets one
    line per completed case (sequential) or chip (parallel).
    """
    tracer = tracer if tracer is not None else get_tracer()
    progress = progress if progress is not None else NULL_PROGRESS
    if workers < 1:
        raise ScheduleError(f"workers must be at least 1, got {workers}")
    sequences = {
        chip_no: names for chip_no, names in CHIP_SEQUENCES.items() if chip_no <= n_chips
    }
    with tracer.span("campaign", seed=seed, n_chips=n_chips, workers=workers) as span:
        if workers > 1:
            result = _parallel_table1(
                seed, n_chips, include_baseline, tracer, progress, workers, sequences
            )
        else:
            campaign = Campaign(n_chips=n_chips, seed=seed, tracer=tracer)
            total_cases = sum(len(names) for names in sequences.values())
            if include_baseline:
                campaign.run_baseline()
                progress.line(f"baseline burn-in done on {n_chips} chips")
            cases_done = 0
            chips_done = 0
            for chip_no, case_names in sequences.items():
                for name in case_names:
                    campaign.run_case(standard_case(name, chip_no))
                    cases_done += 1
                    progress.case_done(
                        campaign.chip_id(chip_no),
                        name,
                        cases_done,
                        total_cases,
                        chips_done,
                        len(sequences),
                    )
                chips_done += 1
            result = campaign.result()
        sim_total = float(sum(chip.elapsed for chip in result.chips.values()))
        span.set("sim_advanced", sim_total)
    if span.duration > 0.0:
        tracer.gauge(
            "campaign.sim_seconds_per_wall_second",
            "simulated time advanced per wall-clock second",
        ).set(sim_total / span.duration)
    return result

"""Multi-chip campaign runner reproducing the paper's Table 1 schedule."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation
from repro.errors import ScheduleError
from repro.fpga.chip import FpgaChip
from repro.lab.datalog import DataLog
from repro.lab.measurement import VirtualTestbench
from repro.lab.schedule import (
    CHIP_SEQUENCES,
    TestCase,
    baseline_phase,
    standard_case,
)
from repro.obs import NULL_PROGRESS, ProgressReporter, get_tracer


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    ``log`` holds every measurement; ``chips`` the final chip states (for
    follow-up what-if experiments); ``fresh_delays`` the per-chip fresh CUT
    delay, needed to convert absolute delay readings into delay change.
    """

    log: DataLog
    chips: dict[str, FpgaChip]
    fresh_delays: dict[str, float] = field(default_factory=dict)

    def _case_records(self, case: str, chip_no: int | None) -> DataLog:
        """Records of one case, disambiguated to a single chip.

        Several Table-1 chips run the same stress case name; a series must
        come from exactly one chip or the time axis interleaves.
        """
        records = self.log.filter(case=case)
        if chip_no is not None:
            records = records.filter(chip_id=f"chip-{chip_no}")
        if len(records) == 0:
            raise ScheduleError(f"no records for case {case!r} (chip_no={chip_no})")
        chip_ids = {record.chip_id for record in records}
        if len(chip_ids) > 1:
            raise ScheduleError(
                f"case {case!r} was run on chips {sorted(chip_ids)}; pass chip_no "
                "to select one"
            )
        return records

    def delay_change_series(
        self, case: str, chip_no: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, dTd) for a case, relative to the chip's fresh delay.

        For recovery cases the first sample (phase_elapsed 0) is the end of
        the preceding stress, so the series starts at the stressed level
        and falls — the paper's Fig. 8 view.
        """
        records = self._case_records(case, chip_no)
        times, delays = records.series("delay")
        chip_id = records.first().chip_id
        return times, delays - self.fresh_delays[chip_id]

    def degradation_percent_series(
        self, case: str, chip_no: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, frequency degradation %) — the paper's Fig. 4/5 view."""
        records = self._case_records(case, chip_no)
        times, freqs = records.series("frequency")
        chip_id = records.first().chip_id
        fresh_frequency = 1.0 / (2.0 * self.fresh_delays[chip_id])
        return times, 100.0 * (1.0 - freqs / fresh_frequency)


class Campaign:
    """A set of chips, their testbenches, and a shared data log.

    Parameters
    ----------
    n_chips:
        Chips on the bench ("chip-1" .. "chip-N"); the paper uses five.
    tech / variation:
        Shared process; each chip samples its own variation so fresh
        frequencies differ, as the paper observes.
    seed:
        Master seed; chips and bench noise get independent child streams.
    tracer:
        Telemetry sink shared by the chips and benches; defaults to the
        process tracer (a no-op unless one was installed).
    """

    def __init__(
        self,
        n_chips: int = 5,
        tech: TechnologyParameters = TECH_40NM,
        variation: ProcessVariation | None = None,
        seed: int | None = 0,
        tracer=None,
    ) -> None:
        if n_chips <= 0:
            raise ScheduleError(f"n_chips must be positive, got {n_chips}")
        master = np.random.default_rng(seed)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.log = DataLog()
        self.chips: dict[str, FpgaChip] = {}
        self.benches: dict[str, VirtualTestbench] = {}
        self._cases_run = self.tracer.counter(
            "campaign.cases", "test cases executed across campaigns"
        )
        variation = variation if variation is not None else ProcessVariation()
        for index in range(n_chips):
            chip_seed, bench_seed = master.spawn(2)
            chip_id = f"chip-{index + 1}"
            chip = FpgaChip(
                chip_id,
                tech=tech,
                variation=variation,
                seed=int(chip_seed.integers(2**31)),
                tracer=self.tracer,
            )
            self.chips[chip_id] = chip
            self.benches[chip_id] = VirtualTestbench(
                chip, rng=bench_seed, tracer=self.tracer
            )
        self.fresh_delays = {cid: chip.fresh_path_delay for cid, chip in self.chips.items()}

    def chip_id(self, chip_no: int) -> str:
        """Map a Table-1 chip number to its bench identifier."""
        chip_id = f"chip-{chip_no}"
        if chip_id not in self.chips:
            raise ScheduleError(f"no chip number {chip_no} on this bench")
        return chip_id

    def run_case(self, case: TestCase) -> None:
        """Execute a case's phases on its chip, appending to the shared log."""
        chip_id = self.chip_id(case.chip_no)
        bench = self.benches[chip_id]
        with self.tracer.span("case", case=case.name, chip_id=chip_id) as span:
            sim_start = bench.chip.elapsed
            for phase in case.phases:
                bench.run_phase(phase, case.name, self.log)
            span.set("sim_advanced", bench.chip.elapsed - sim_start)
        self._cases_run.inc()

    def run_baseline(self) -> None:
        """Burn every chip in (2 h at 20 degC, 1.2 V) — the paper's baseline."""
        phase = baseline_phase()
        for chip_id, bench in self.benches.items():
            case_name = f"BASELINE-{chip_id}"
            with self.tracer.span("case", case=case_name, chip_id=chip_id) as span:
                sim_start = bench.chip.elapsed
                bench.run_phase(phase, case_name, self.log)
                span.set("sim_advanced", bench.chip.elapsed - sim_start)
            self._cases_run.inc()

    def result(self) -> CampaignResult:
        """Bundle the current state into a :class:`CampaignResult`."""
        return CampaignResult(
            log=self.log, chips=dict(self.chips), fresh_delays=dict(self.fresh_delays)
        )


def run_table1_campaign(
    seed: int | None = 0,
    n_chips: int = 5,
    include_baseline: bool = True,
    tracer=None,
    progress: ProgressReporter | None = None,
) -> CampaignResult:
    """Run the full Table 1 schedule and return the result.

    Chip execution order follows the paper: each chip runs its stress case
    then its recovery case; chip 5 additionally re-stresses for 48 h and
    runs the 12 h recovery (``AR110N12``).

    ``tracer`` wraps the run in a ``campaign`` span (cases and phases nest
    under it) and records the simulated-seconds-per-wall-second
    throughput; ``progress`` gets one line per completed case.
    """
    tracer = tracer if tracer is not None else get_tracer()
    progress = progress if progress is not None else NULL_PROGRESS
    campaign = Campaign(n_chips=n_chips, seed=seed, tracer=tracer)
    sequences = {
        chip_no: names for chip_no, names in CHIP_SEQUENCES.items() if chip_no <= n_chips
    }
    total_cases = sum(len(names) for names in sequences.values())
    with tracer.span("campaign", seed=seed, n_chips=n_chips) as span:
        if include_baseline:
            campaign.run_baseline()
            progress.line(f"baseline burn-in done on {n_chips} chips")
        cases_done = 0
        chips_done = 0
        for chip_no, case_names in sequences.items():
            for name in case_names:
                campaign.run_case(standard_case(name, chip_no))
                cases_done += 1
                progress.case_done(
                    campaign.chip_id(chip_no),
                    name,
                    cases_done,
                    total_cases,
                    chips_done,
                    len(sequences),
                )
            chips_done += 1
        sim_total = float(sum(chip.elapsed for chip in campaign.chips.values()))
        span.set("sim_advanced", sim_total)
    if span.duration > 0.0:
        tracer.gauge(
            "campaign.sim_seconds_per_wall_second",
            "simulated time advanced per wall-clock second",
        ).set(sim_total / span.duration)
    return campaign.result()

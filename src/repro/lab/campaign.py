"""Multi-chip campaign runner reproducing the paper's Table 1 schedule.

Chips on the bench are fully independent — each owns its chip, testbench
and RNG child streams — so the campaign can run them sequentially (the
default) or fan them out to worker threads with ``workers=N``.  The
parallel path is bit-identical to the sequential one for the same seed:
seed derivation, per-chip execution order and the merged log order do not
depend on how workers are scheduled.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.device.variation import ProcessVariation
from repro.errors import (
    CheckpointError,
    ChipDropoutError,
    ConfigurationError,
    RetryExhaustedError,
    ScheduleError,
)
from repro.fpga.chip import FpgaChip
from repro.guard import Guard, GuardConfig
from repro.lab.datalog import DataLog
from repro.lab.faults import FaultInjector, FaultPlan
from repro.lab.measurement import VirtualTestbench
from repro.lab.resilience import (
    CheckpointStore,
    QuarantineReport,
    ResilientTestbench,
    RetryPolicy,
)
from repro.lab.sanitizer import NULL_SANITIZER, DeterminismSanitizer
from repro.lab.schedule import (
    CHIP_SEQUENCES,
    TestCase,
    TestPhase,
    baseline_phase,
    standard_case,
)
from repro.obs import NULL_PROGRESS, NULL_TRACER, ProgressReporter, Tracer, get_tracer
from repro.obs.profile import CaseThroughputSampler
from repro.units import hours


def _chip_guard(config, tracer, chip_id: str) -> Guard | None:
    """A per-chip :class:`Guard` for ``config``, or ``None`` (ambient).

    One guard per chip keeps violation counts and budgets chip-local —
    the quarantine decision must not depend on what other chips did —
    and makes the checks thread-safe in parallel campaigns.
    """
    if config is None:
        return None
    return Guard(config, tracer=tracer, owner=chip_id)


def _run_case_phases(
    tracer,
    cases_counter,
    bench: VirtualTestbench,
    case_name: str,
    phases: tuple[TestPhase, ...] | list[TestPhase],
    log: DataLog,
    sanitizer=NULL_SANITIZER,
) -> None:
    """Execute one case's phases on a bench inside a ``case`` span.

    The single definition of the case-span discipline, shared by the
    sequential :class:`Campaign` methods and the parallel chip workers.
    The throughput sampler turns the case's counter deltas into per-case
    derived gauges (measurements/s, trap updates/s) — a no-op on the
    null tracer.  With a live ``sanitizer`` every finished phase is
    hashed (records + trap + RNG state) into a ``state_hash`` span
    nested under the case span.
    """
    sampler = CaseThroughputSampler(tracer)
    with tracer.span("case", case=case_name, chip_id=bench.chip.chip_id) as span:
        sim_start = bench.chip.elapsed
        for phase in phases:
            phase_start = len(log)
            bench.run_phase(phase, case_name, log)
            sanitizer.record_phase(tracer, bench, case_name, phase, log, phase_start)
        span.set("sim_advanced", bench.chip.elapsed - sim_start)
    cases_counter.inc()
    sampler.finish(span)


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    ``log`` holds every measurement; ``chips`` the final chip states (for
    follow-up what-if experiments); ``fresh_delays`` the per-chip fresh CUT
    delay, needed to convert absolute delay readings into delay change.
    ``quarantined`` flags chips pulled from the bench mid-campaign (chip
    dropout, retries exhausted) — their measurements up to the failure are
    kept in ``log``, and the campaign completes on the survivors.
    ``state_hashes`` is populated only under ``sanitize=True``: one
    digest per ``chip/seq`` phase boundary, identical across sequential
    and parallel runs of the same seed.
    """

    log: DataLog
    chips: dict[str, FpgaChip]
    fresh_delays: dict[str, float] = field(default_factory=dict)
    quarantined: dict[str, QuarantineReport] = field(default_factory=dict)
    state_hashes: dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every chip finished its full schedule."""
        return not self.quarantined

    def _case_records(self, case: str, chip_no: int | None) -> DataLog:
        """Records of one case, disambiguated to a single chip.

        Several Table-1 chips run the same stress case name; a series must
        come from exactly one chip or the time axis interleaves.
        """
        records = self.log.filter(case=case)
        if chip_no is not None:
            records = records.filter(chip_id=f"chip-{chip_no}")
        if len(records) == 0:
            raise ScheduleError(f"no records for case {case!r} (chip_no={chip_no})")
        chip_ids = {record.chip_id for record in records}
        if len(chip_ids) > 1:
            raise ScheduleError(
                f"case {case!r} was run on chips {sorted(chip_ids)}; pass chip_no "
                "to select one"
            )
        return records

    def delay_change_series(
        self, case: str, chip_no: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, dTd) for a case, relative to the chip's fresh delay.

        For recovery cases the first sample (phase_elapsed 0) is the end of
        the preceding stress, so the series starts at the stressed level
        and falls — the paper's Fig. 8 view.
        """
        records = self._case_records(case, chip_no)
        times, delays = records.series("delay")
        chip_id = records.first().chip_id
        return times, delays - self.fresh_delays[chip_id]

    def degradation_percent_series(
        self, case: str, chip_no: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, frequency degradation %) — the paper's Fig. 4/5 view."""
        records = self._case_records(case, chip_no)
        times, freqs = records.series("frequency")
        chip_id = records.first().chip_id
        fresh_frequency = 1.0 / (2.0 * self.fresh_delays[chip_id])
        return times, 100.0 * (1.0 - freqs / fresh_frequency)


class Campaign:
    """A set of chips, their testbenches, and a shared data log.

    Parameters
    ----------
    n_chips:
        Chips on the bench ("chip-1" .. "chip-N"); the paper uses five.
    tech / variation:
        Shared process; each chip samples its own variation so fresh
        frequencies differ, as the paper observes.
    seed:
        Master seed; chips and bench noise get independent child streams.
    tracer:
        Telemetry sink shared by the chips and benches; defaults to the
        process tracer (a no-op unless one was installed).
    guard:
        Physics-contract policy (:class:`~repro.guard.GuardConfig`); each
        chip gets its own :class:`~repro.guard.Guard` instance so
        violation counts and budgets are per chip.  ``None`` leaves the
        chips on the ambient guard.
    sanitizer:
        A :class:`~repro.lab.sanitizer.DeterminismSanitizer` to hash
        per-chip state at phase boundaries; defaults to the inert
        ``NULL_SANITIZER``.
    """

    def __init__(
        self,
        n_chips: int = 5,
        tech: TechnologyParameters = TECH_40NM,
        variation: ProcessVariation | None = None,
        seed: int | None = 0,
        tracer=None,
        guard: GuardConfig | None = None,
        sanitizer=None,
    ) -> None:
        if n_chips <= 0:
            raise ScheduleError(f"n_chips must be positive, got {n_chips}")
        master = np.random.default_rng(seed)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        self.log = DataLog()
        self.chips: dict[str, FpgaChip] = {}
        self.benches: dict[str, VirtualTestbench] = {}
        self._cases_run = self.tracer.counter(
            "campaign.cases", "test cases executed across campaigns"
        )
        variation = variation if variation is not None else ProcessVariation()
        for index in range(n_chips):
            chip_seed, bench_seed = master.spawn(2)
            chip_id = f"chip-{index + 1}"
            chip = FpgaChip(
                chip_id,
                tech=tech,
                variation=variation,
                seed=int(chip_seed.integers(2**31)),
                tracer=self.tracer,
                guard=_chip_guard(guard, self.tracer, chip_id),
            )
            self.chips[chip_id] = chip
            self.benches[chip_id] = VirtualTestbench(
                chip, rng=bench_seed, tracer=self.tracer
            )
        self.fresh_delays = {cid: chip.fresh_path_delay for cid, chip in self.chips.items()}

    def chip_id(self, chip_no: int) -> str:
        """Map a Table-1 chip number to its bench identifier."""
        chip_id = f"chip-{chip_no}"
        if chip_id not in self.chips:
            raise ScheduleError(f"no chip number {chip_no} on this bench")
        return chip_id

    def run_case(self, case: TestCase) -> None:
        """Execute a case's phases on its chip, appending to the shared log."""
        bench = self.benches[self.chip_id(case.chip_no)]
        _run_case_phases(
            self.tracer,
            self._cases_run,
            bench,
            case.name,
            case.phases,
            self.log,
            self.sanitizer,
        )

    def run_baseline(self) -> None:
        """Burn every chip in (2 h at 20 degC, 1.2 V) — the paper's baseline."""
        phase = baseline_phase()
        for chip_id, bench in self.benches.items():
            _run_case_phases(
                self.tracer,
                self._cases_run,
                bench,
                f"BASELINE-{chip_id}",
                [phase],
                self.log,
                self.sanitizer,
            )

    def result(self) -> CampaignResult:
        """Bundle the current state into a :class:`CampaignResult`."""
        return CampaignResult(
            log=self.log,
            chips=dict(self.chips),
            fresh_delays=dict(self.fresh_delays),
            state_hashes=dict(self.sanitizer.hashes) if self.sanitizer.enabled else {},
        )


def _run_chip_schedule(
    chip_no: int,
    case_names: tuple[str, ...],
    include_baseline: bool,
    variation: ProcessVariation,
    chip_stream: np.random.Generator,
    bench_stream: np.random.Generator,
    instrument: bool,
    guard_config: GuardConfig | None = None,
    sanitize: bool = False,
) -> tuple[FpgaChip, DataLog, DataLog, "Tracer | None", dict[str, str]]:
    """One chip's full Table 1 schedule, self-contained for a worker.

    Seed handling mirrors :class:`Campaign.__init__` exactly — the chip
    seed is drawn from ``chip_stream`` and the bench noise runs off
    ``bench_stream`` — so the records produced here are bit-identical to
    the sequential path.  Baseline and case records are returned as
    separate shards because the sequential log interleaves them
    (all baselines first, then the case sequences).  The worker owns its
    sanitizer the same way it owns its tracer; the digests it returns
    cover only this chip, so merging them is collision-free.
    """
    worker_tracer = Tracer() if instrument else NULL_TRACER
    sanitizer = DeterminismSanitizer() if sanitize else NULL_SANITIZER
    chip = FpgaChip(
        f"chip-{chip_no}",
        tech=TECH_40NM,
        variation=variation,
        seed=int(chip_stream.integers(2**31)),
        tracer=worker_tracer,
        guard=_chip_guard(guard_config, worker_tracer, f"chip-{chip_no}"),
    )
    bench = VirtualTestbench(chip, rng=bench_stream, tracer=worker_tracer)
    cases_counter = worker_tracer.counter(
        "campaign.cases", "test cases executed across campaigns"
    )
    baseline_log = DataLog()
    case_log = DataLog()
    if include_baseline:
        _run_case_phases(
            worker_tracer,
            cases_counter,
            bench,
            f"BASELINE-{chip.chip_id}",
            [baseline_phase()],
            baseline_log,
            sanitizer,
        )
    for name in case_names:
        case = standard_case(name, chip_no)
        _run_case_phases(
            worker_tracer,
            cases_counter,
            bench,
            case.name,
            case.phases,
            case_log,
            sanitizer,
        )
    return (
        chip,
        baseline_log,
        case_log,
        worker_tracer if instrument else None,
        dict(sanitizer.hashes) if sanitize else {},
    )


def _parallel_table1(
    seed: int | None,
    n_chips: int,
    include_baseline: bool,
    tracer,
    progress: ProgressReporter,
    workers: int,
    sequences: dict[int, tuple[str, ...]],
    guard_config: GuardConfig | None = None,
    sanitize: bool = False,
) -> CampaignResult:
    """Fan the chips out to worker threads and merge deterministically.

    Threads (not processes): the trap updates are numpy array ops that
    release the GIL, and threads avoid pickling chips back.  Workers are
    merged in chip order after all complete — log order, span ids and
    counter sums never depend on scheduling.
    """
    master = np.random.default_rng(seed)
    variation = ProcessVariation()
    streams = [master.spawn(2) for _ in range(n_chips)]
    results: list = [None] * n_chips
    with ThreadPoolExecutor(max_workers=min(workers, n_chips)) as pool:
        future_to_index = {
            pool.submit(
                _run_chip_schedule,
                index + 1,
                sequences.get(index + 1, ()),
                include_baseline,
                variation,
                streams[index][0],
                streams[index][1],
                tracer.enabled,
                guard_config,
                sanitize,
            ): index
            for index in range(n_chips)
        }
        chips_done = 0
        for future in as_completed(future_to_index):
            index = future_to_index[future]
            results[index] = future.result()
            chips_done += 1
            progress.chip_done(f"chip-{index + 1}", chips_done, n_chips)
    chips: dict[str, FpgaChip] = {}
    fresh_delays: dict[str, float] = {}
    state_hashes: dict[str, str] = {}
    for chip, _, _, worker_tracer, worker_hashes in results:
        chips[chip.chip_id] = chip
        fresh_delays[chip.chip_id] = chip.fresh_path_delay
        if worker_tracer is not None:
            tracer.absorb(worker_tracer)
        state_hashes.update(worker_hashes)
    log = DataLog.merge(
        [baseline_log for _, baseline_log, _, _, _ in results]
        + [case_log for _, _, case_log, _, _ in results]
    )
    return CampaignResult(
        log=log, chips=chips, fresh_delays=fresh_delays, state_hashes=state_hashes
    )


def _resilient_chip_schedule(
    chip_no: int,
    case_names: tuple[str, ...],
    include_baseline: bool,
    variation: ProcessVariation,
    chip_stream: np.random.Generator,
    bench_stream: np.random.Generator,
    instrument: bool,
    plan: FaultPlan | None,
    retry: RetryPolicy | None,
    store: CheckpointStore | None,
    guard_config: GuardConfig | None = None,
    sanitize: bool = False,
) -> tuple[
    FpgaChip,
    DataLog,
    DataLog,
    QuarantineReport | None,
    int,
    "Tracer | None",
    dict[str, str],
]:
    """One chip's schedule with faults, retries and checkpointing.

    Seed handling is identical to :func:`_run_chip_schedule`, so with no
    faults installed the records are bit-identical to the plain paths.
    On resume the chip is rebuilt from its seed (cheap, deterministic),
    its trap state and the bench RNG are rewound from the checkpoint, and
    only the unfinished tail of the schedule runs.

    A clamp-mode guard whose violation budget runs out raises
    :class:`~repro.errors.ChipDropoutError` from inside the model stack;
    it is caught below exactly like an instrument dropout, so the chip
    lands in quarantine and the campaign completes on the survivors.
    """
    worker_tracer = Tracer() if instrument else NULL_TRACER
    sanitizer = DeterminismSanitizer() if sanitize else NULL_SANITIZER
    chip = FpgaChip(
        f"chip-{chip_no}",
        tech=TECH_40NM,
        variation=variation,
        seed=int(chip_stream.integers(2**31)),
        tracer=worker_tracer,
        guard=_chip_guard(guard_config, worker_tracer, f"chip-{chip_no}"),
    )
    baseline_log, case_log = DataLog(), DataLog()
    completed: list[str] = []
    quarantine: QuarantineReport | None = None
    if store is not None:
        loaded = store.load_chip(chip, bench_stream)
        if loaded is not None:
            baseline_log, case_log, completed, quarantine = loaded
    if plan is not None:
        injector = FaultInjector(
            plan, chip.chip_id, start_time=chip.elapsed, tracer=worker_tracer
        )
        bench: VirtualTestbench = ResilientTestbench(
            chip, injector=injector, retry=retry, rng=bench_stream, tracer=worker_tracer
        )
    else:
        bench = VirtualTestbench(chip, rng=bench_stream, tracer=worker_tracer)
    cases_counter = worker_tracer.counter(
        "campaign.cases", "test cases executed across campaigns"
    )
    quarantines_counter = worker_tracer.counter(
        "campaign.quarantines", "chips pulled from the bench mid-campaign"
    )
    schedule: list[tuple[str, tuple[TestPhase, ...], DataLog]] = []
    if include_baseline:
        schedule.append((f"BASELINE-{chip.chip_id}", (baseline_phase(),), baseline_log))
    for name in case_names:
        schedule.append((name, standard_case(name, chip_no).phases, case_log))
    for index, (case_name, phases, log) in enumerate(schedule):
        if quarantine is not None:
            break
        if index < len(completed):
            if completed[index] != case_name:
                raise CheckpointError(
                    f"checkpoint for {chip.chip_id} completed {completed[index]!r} "
                    f"at position {index}, but the schedule says {case_name!r}"
                )
            continue
        try:
            _run_case_phases(
                worker_tracer, cases_counter, bench, case_name, phases, log, sanitizer
            )
        except (ChipDropoutError, RetryExhaustedError) as error:
            # Graceful degradation: keep the records taken so far, flag
            # the chip, and let the rest of the campaign finish.
            quarantine = QuarantineReport(
                chip_id=chip.chip_id,
                case=case_name,
                sim_time=chip.elapsed,
                reason=str(error),
            )
            quarantines_counter.inc()
            if store is not None:
                store.save_chip(
                    chip, bench_stream, baseline_log, case_log, completed, quarantine
                )
            break
        completed.append(case_name)
        if store is not None:
            store.save_chip(chip, bench_stream, baseline_log, case_log, completed)
    retries_taken = getattr(bench, "retries_taken", 0)
    return (
        chip,
        baseline_log,
        case_log,
        quarantine,
        retries_taken,
        worker_tracer if instrument else None,
        dict(sanitizer.hashes) if sanitize else {},
    )


def _resilient_table1(
    seed: int | None,
    n_chips: int,
    include_baseline: bool,
    tracer,
    progress: ProgressReporter,
    workers: int,
    sequences: dict[int, tuple[str, ...]],
    plan: FaultPlan | None,
    retry: RetryPolicy | None,
    store: CheckpointStore | None,
    guard_config: GuardConfig | None = None,
    sanitize: bool = False,
) -> CampaignResult:
    """Fan chips out with fault/retry/checkpoint support and merge.

    The same deterministic merge discipline as :func:`_parallel_table1`:
    chip order decides log order, worker scheduling never does.
    """
    master = np.random.default_rng(seed)
    variation = ProcessVariation()
    streams = [master.spawn(2) for _ in range(n_chips)]
    results: list = [None] * n_chips
    with ThreadPoolExecutor(max_workers=min(max(workers, 1), n_chips)) as pool:
        future_to_index = {
            pool.submit(
                _resilient_chip_schedule,
                index + 1,
                sequences.get(index + 1, ()),
                include_baseline,
                variation,
                streams[index][0],
                streams[index][1],
                tracer.enabled,
                plan,
                retry,
                store,
                guard_config,
                sanitize,
            ): index
            for index in range(n_chips)
        }
        chips_done = 0
        retries_so_far = 0
        quarantined_so_far = 0
        for future in as_completed(future_to_index):
            index = future_to_index[future]
            results[index] = future.result()
            chips_done += 1
            quarantine = results[index][3]
            retries_so_far += results[index][4]
            if quarantine is not None:
                quarantined_so_far += 1
            progress.chip_done(
                f"chip-{index + 1}",
                chips_done,
                n_chips,
                retries=retries_so_far,
                quarantined=quarantined_so_far,
                quarantine_reason=(
                    f"during {quarantine.case}: {quarantine.reason}"
                    if quarantine is not None
                    else None
                ),
            )
    chips: dict[str, FpgaChip] = {}
    fresh_delays: dict[str, float] = {}
    quarantined: dict[str, QuarantineReport] = {}
    state_hashes: dict[str, str] = {}
    for chip, _, _, quarantine, _, worker_tracer, worker_hashes in results:
        chips[chip.chip_id] = chip
        fresh_delays[chip.chip_id] = chip.fresh_path_delay
        if quarantine is not None:
            quarantined[chip.chip_id] = quarantine
        if worker_tracer is not None:
            tracer.absorb(worker_tracer)
        state_hashes.update(worker_hashes)
    log = DataLog.merge(
        [baseline_log for _, baseline_log, _, _, _, _, _ in results]
        + [case_log for _, _, case_log, _, _, _, _ in results]
    )
    return CampaignResult(
        log=log,
        chips=chips,
        fresh_delays=fresh_delays,
        quarantined=quarantined,
        state_hashes=state_hashes,
    )


def table1_horizon(n_chips: int = 5, include_baseline: bool = True) -> float:
    """Longest per-chip simulated schedule length in seconds.

    The natural horizon for :meth:`FaultPlan.generate`: fault times are
    drawn on each chip's own clock, which spans at most this long.
    """
    horizon = 0.0
    for chip_no, names in CHIP_SEQUENCES.items():
        if chip_no > n_chips:
            continue
        total = hours(2.0) if include_baseline else 0.0
        total += sum(standard_case(name, chip_no).total_duration for name in names)
        horizon = max(horizon, total)
    return horizon


def run_table1_campaign(
    seed: int | None = 0,
    n_chips: int = 5,
    include_baseline: bool = True,
    tracer=None,
    progress: ProgressReporter | None = None,
    workers: int = 1,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    checkpoint: "str | None" = None,
    resume: bool = False,
    guard: GuardConfig | None = None,
    sanitize: bool = False,
) -> CampaignResult:
    """Run the full Table 1 schedule and return the result.

    Chip execution order follows the paper: each chip runs its stress case
    then its recovery case; chip 5 additionally re-stresses for 48 h and
    runs the 12 h recovery (``AR110N12``).

    ``workers`` above 1 runs each chip's schedule in a worker thread; the
    merged result is bit-identical to the sequential run for the same
    seed.  ``tracer`` wraps the run in a ``campaign`` span (cases and
    phases nest under it, whichever worker ran them) and records the
    simulated-seconds-per-wall-second throughput; ``progress`` gets one
    line per completed case (sequential) or chip (parallel).

    Resilience: ``faults`` installs a :class:`FaultPlan` (chips it never
    names stay bit-identical to a fault-free run); ``retry`` bounds the
    sample re-reads taken on transient faults; ``checkpoint`` names a
    directory that receives a per-chip snapshot after every completed
    case, and ``resume=True`` continues a campaign previously
    checkpointed there without replaying finished chips.  A chip that
    drops out (or exhausts its retries) is quarantined: the campaign
    completes on the survivors and reports the gap in
    ``CampaignResult.quarantined``.

    ``guard`` installs a physics-contract :class:`~repro.guard.GuardConfig`
    on every chip (each chip gets its own :class:`~repro.guard.Guard`
    instance, so worker threads never share violation state).  In clamp
    mode a chip that exhausts its violation budget is quarantined exactly
    like a dropout; in raise mode the first violation aborts the campaign
    with a replayable repro bundle.

    ``sanitize`` turns on the determinism sanitizer: every chip's state
    (records, trap occupancy, bench RNG) is hashed at each phase
    boundary into ``CampaignResult.state_hashes`` and, when a tracer is
    live, into ``state_hash`` spans that ``repro trace diff`` compares —
    sequential and ``workers=N`` runs of one seed must produce identical
    digests.
    """
    tracer = tracer if tracer is not None else get_tracer()
    progress = progress if progress is not None else NULL_PROGRESS
    if workers < 1:
        raise ScheduleError(f"workers must be at least 1, got {workers}")
    store = None
    if checkpoint is not None:
        store = CheckpointStore(checkpoint)
        if store.read_manifest() is not None and not resume:
            raise CheckpointError(
                f"{checkpoint} already holds a campaign checkpoint; pass "
                "resume=True (--resume) to continue it or use a fresh directory"
            )
        store.init_manifest(seed, n_chips, include_baseline)
    elif resume:
        raise ConfigurationError("resume requires a checkpoint directory")
    resilient = (
        faults is not None
        or retry is not None
        or store is not None
        or guard is not None
    )
    sequences = {
        chip_no: names for chip_no, names in CHIP_SEQUENCES.items() if chip_no <= n_chips
    }
    with tracer.span("campaign", seed=seed, n_chips=n_chips, workers=workers) as span:
        if resilient:
            result = _resilient_table1(
                seed,
                n_chips,
                include_baseline,
                tracer,
                progress,
                workers,
                sequences,
                faults,
                retry,
                store,
                guard,
                sanitize=sanitize,
            )
        elif workers > 1:
            result = _parallel_table1(
                seed,
                n_chips,
                include_baseline,
                tracer,
                progress,
                workers,
                sequences,
                sanitize=sanitize,
            )
        else:
            campaign = Campaign(
                n_chips=n_chips,
                seed=seed,
                tracer=tracer,
                sanitizer=DeterminismSanitizer() if sanitize else None,
            )
            total_cases = sum(len(names) for names in sequences.values())
            if include_baseline:
                campaign.run_baseline()
                progress.line(f"baseline burn-in done on {n_chips} chips")
            cases_done = 0
            chips_done = 0
            for chip_no, case_names in sequences.items():
                for name in case_names:
                    campaign.run_case(standard_case(name, chip_no))
                    cases_done += 1
                    progress.case_done(
                        campaign.chip_id(chip_no),
                        name,
                        cases_done,
                        total_cases,
                        chips_done,
                        len(sequences),
                    )
                chips_done += 1
            result = campaign.result()
        sim_total = float(sum(chip.elapsed for chip in result.chips.values()))
        span.set("sim_advanced", sim_total)
    if span.duration > 0.0:
        tracer.gauge(
            "campaign.sim_seconds_per_wall_second",
            "simulated time advanced per wall-clock second",
        ).set(sim_total / span.duration)
    return result

"""Virtual thermal chamber with the paper's +/-0.3 degC fluctuation."""

from __future__ import annotations

import numpy as np

from repro.errors import InstrumentError
from repro.units import celsius, to_celsius


class ThermalChamber:
    """Heats or cools the device under test to a programmed setpoint.

    Parameters
    ----------
    fluctuation_c:
        Half-width of the uniform temperature fluctuation around the
        setpoint in degrees (the paper quotes +/-0.3 degC).
    min_c / max_c:
        Programmable setpoint range of the chamber.
    """

    def __init__(
        self, fluctuation_c: float = 0.3, min_c: float = -60.0, max_c: float = 150.0
    ) -> None:
        if fluctuation_c < 0.0:
            raise InstrumentError("fluctuation must be non-negative")
        if min_c >= max_c:
            raise InstrumentError("chamber range must satisfy min_c < max_c")
        self.fluctuation_c = fluctuation_c
        self.min_c = min_c
        self.max_c = max_c
        self._setpoint = celsius(20.0)

    @property
    def setpoint(self) -> float:
        """Programmed temperature in kelvin."""
        return self._setpoint

    @property
    def setpoint_celsius(self) -> float:
        """Programmed temperature in degrees Celsius."""
        return to_celsius(self._setpoint)

    def set_temperature_celsius(self, degrees_c: float) -> None:
        """Program a new setpoint; raises if outside the chamber range."""
        if not self.min_c <= degrees_c <= self.max_c:
            raise InstrumentError(
                f"setpoint {degrees_c} degC outside chamber range "
                f"[{self.min_c}, {self.max_c}] degC"
            )
        self._setpoint = celsius(degrees_c)

    def actual_temperature(self, rng: np.random.Generator | int | None = None) -> float:
        """One realisation of the chamber temperature (kelvin).

        The chamber holds the setpoint within a uniform +/-fluctuation
        band; sampling per stress chunk feeds realistic thermal jitter
        into the aging engine.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        jitter = rng.uniform(-self.fluctuation_c, self.fluctuation_c)
        return self._setpoint + jitter

"""Virtual measurement lab: instruments, schedules and campaign running.

These classes replace the paper's physical test setup — thermal chamber
(+/-0.3 degC), DC power supply with a negative rail, 500 Hz reference
clock — and orchestrate the accelerated stress/recovery schedules of the
paper's Table 1 on virtual :class:`~repro.fpga.chip.FpgaChip` instances.
"""

from repro.lab.clock_generator import ClockGenerator
from repro.lab.campaign import (
    Campaign,
    CampaignResult,
    run_table1_campaign,
    table1_horizon,
)
from repro.lab.datalog import DataLog, MeasurementRecord
from repro.lab.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.lab.measurement import VirtualTestbench
from repro.lab.power_supply import DcPowerSupply
from repro.lab.resilience import (
    CheckpointStore,
    QuarantineReport,
    ResilientTestbench,
    RetryPolicy,
)
from repro.lab.replay import fresh_delays_from_log, result_from_csv, result_from_log
from repro.lab.schedule import (
    PhaseKind,
    TABLE1_CASES,
    TestCase,
    TestPhase,
    parse_case_name,
    standard_case,
)
from repro.lab.thermal_chamber import ThermalChamber

__all__ = [
    "Campaign",
    "CampaignResult",
    "CheckpointStore",
    "ClockGenerator",
    "DataLog",
    "DcPowerSupply",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "fresh_delays_from_log",
    "result_from_csv",
    "result_from_log",
    "MeasurementRecord",
    "PhaseKind",
    "QuarantineReport",
    "ResilientTestbench",
    "RetryPolicy",
    "TABLE1_CASES",
    "TestCase",
    "TestPhase",
    "ThermalChamber",
    "VirtualTestbench",
    "parse_case_name",
    "run_table1_campaign",
    "standard_case",
    "table1_horizon",
]

"""Virtual DC power supply with a negative rail for accelerated recovery."""

from __future__ import annotations

import numpy as np

from repro.errors import InstrumentError


class DcPowerSupply:
    """Programmable core supply.

    The paper's recovery tests drive the core rail to -0.3 V; a real bench
    supply has a programmable range and a small setpoint error, both
    modelled here.

    Parameters
    ----------
    min_voltage / max_voltage:
        Programmable range in volts.  The default upper bound is the 40 nm
        core rail plus 10 % margin; the lower bound allows the negative
        recovery voltages.
    accuracy_volts:
        Half-width of the uniform setpoint error.
    """

    def __init__(
        self,
        min_voltage: float = -0.6,
        max_voltage: float = 1.32,
        accuracy_volts: float = 1.0e-3,
    ) -> None:
        if min_voltage >= max_voltage:
            raise InstrumentError("supply range must satisfy min < max")
        if accuracy_volts < 0.0:
            raise InstrumentError("accuracy must be non-negative")
        self.min_voltage = min_voltage
        self.max_voltage = max_voltage
        self.accuracy_volts = accuracy_volts
        self._setpoint = 1.2
        self._output_enabled = True

    @property
    def setpoint(self) -> float:
        """Programmed output voltage in volts."""
        return self._setpoint

    @property
    def output_enabled(self) -> bool:
        """Whether the output relay is closed."""
        return self._output_enabled

    def set_voltage(self, volts: float) -> None:
        """Program the output voltage; raises outside the supply range."""
        if not self.min_voltage <= volts <= self.max_voltage:
            raise InstrumentError(
                f"setpoint {volts} V outside supply range "
                f"[{self.min_voltage}, {self.max_voltage}] V"
            )
        self._setpoint = volts

    def enable_output(self) -> None:
        """Close the output relay."""
        self._output_enabled = True

    def disable_output(self) -> None:
        """Open the output relay (chip sees 0 V — passive recovery)."""
        self._output_enabled = False

    def actual_voltage(self, rng: np.random.Generator | int | None = None) -> float:
        """One realisation of the delivered voltage (volts)."""
        if not self._output_enabled:
            return 0.0
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return self._setpoint + rng.uniform(-self.accuracy_volts, self.accuracy_volts)

"""Retry, quarantine and checkpoint/resume for long campaigns.

Three cooperating pieces keep a multi-day virtual campaign alive on a
flaky bench:

* :class:`RetryPolicy` — bounded sample re-reads with deterministic
  backoff measured in *simulated* seconds (the operator holds the phase
  bias while re-arming the readout, so the chip keeps aging during the
  wait, exactly as on hardware);
* :class:`ResilientTestbench` — a :class:`~repro.lab.measurement.VirtualTestbench`
  whose delivered temperature/voltage and readout path consult a
  :class:`~repro.lab.faults.FaultInjector`, retrying transient faults and
  letting :class:`~repro.errors.ChipDropoutError` escape so the campaign
  can quarantine the chip;
* :class:`CheckpointStore` — per-chip on-disk snapshots (trap occupancy,
  bench RNG bit-generator state, DataLog shards) written after every
  completed case, so a killed campaign resumes without replaying
  finished chips.

With no faults installed the resilient bench consumes its RNG stream in
exactly the same order as the plain bench — resilient, checkpointed runs
are bit-identical to unprotected ones.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import (
    CheckpointError,
    ChipDropoutError,
    ConfigurationError,
    CounterOverflowError,
    InstrumentError,
    MeasurementError,
    RetryExhaustedError,
)
from repro.fpga.ring_oscillator import RoMeasurement
from repro.lab.datalog import DataLog
from repro.lab.faults import FaultInjector, FaultKind
from repro.lab.measurement import VirtualTestbench
from repro.lab.schedule import TestPhase


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts every try including the first; backoff before
    retry ``k`` (1-based) is ``backoff_seconds * backoff_multiplier**(k-1)``
    simulated seconds.  No randomness: two runs of the same faulted
    campaign retry at the same simulated times.
    """

    max_attempts: int = 3
    backoff_seconds: float = 5.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0.0:
            raise ConfigurationError("backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be at least 1")

    def backoff(self, retry_number: int) -> float:
        """Simulated seconds to wait before 1-based retry ``retry_number``."""
        return self.backoff_seconds * self.backoff_multiplier ** (retry_number - 1)


@dataclass(frozen=True)
class QuarantineReport:
    """Why a chip was pulled from the campaign, and when."""

    chip_id: str
    case: str
    sim_time: float
    reason: str


class ResilientTestbench(VirtualTestbench):
    """A testbench that survives injected instrument faults.

    Overrides the fault-injectable hooks of
    :class:`~repro.lab.measurement.VirtualTestbench`: delivered
    temperature/voltage pick up drift/droop windows, the readout path
    fires pending one-shot faults, and sampling retries transient errors
    under ``retry``.  Chip dropout is checked at every chunk and readout
    boundary and always escapes.
    """

    #: Counts further than the last good sample that flag a corrupt readout.
    PLAUSIBILITY_COUNTS = 64

    def __init__(
        self,
        chip,
        injector: FaultInjector,
        retry: RetryPolicy | None = None,
        **kwargs,
    ) -> None:
        super().__init__(chip, **kwargs)
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        self._last_good_count: int | None = None
        #: Plain retry tally for live progress lines — counted even when
        #: the tracer is the no-op default.
        self.retries_taken = 0
        self._retries = self.tracer.counter(
            "lab.sample_retries", "readout bursts retried after a transient fault"
        )

    def _apply_chunk(self, phase, chunk, temperature, voltage) -> None:
        now = self.chip.elapsed
        upset = self.injector.pop_upset(now)
        if upset is not None:
            # A state upset lands between evolve steps: the bogus
            # occupancy sits in the trap arrays until the next chunk's
            # evolve, where the guard contract catches it (raise mode)
            # or clamps it back into domain (clamp mode).
            self.chip.inject_trap_upset(upset.magnitude)
        super()._apply_chunk(phase, chunk, temperature, voltage)

    def _delivered_temperature(self) -> float:
        now = self.chip.elapsed
        self.injector.check_dropout(now)
        return super()._delivered_temperature() + self.injector.temperature_offset(now)

    def _delivered_voltage(self) -> float:
        now = self.chip.elapsed
        self.injector.check_dropout(now)
        voltage = super()._delivered_voltage()
        if voltage > 0.0:
            # Droop only sags a driven positive rail; an open relay (0 V)
            # or the negative recovery rail is regulated differently.
            droop = self.injector.voltage_droop(now)
            if droop > 0.0:
                voltage = max(voltage - droop, 0.05)
        return voltage

    def _read_measurement(self) -> RoMeasurement:
        now = self.chip.elapsed
        self.injector.check_dropout(now)
        event = self.injector.pop_readout_fault(now)
        if event is None:
            measurement = super()._read_measurement()
            self._last_good_count = measurement.count
            return measurement
        if event.kind is FaultKind.DROPPED_READOUT:
            raise MeasurementError("counter dropped the readout burst")
        if event.kind is FaultKind.RELAY_CHATTER:
            raise InstrumentError("supply relay chatter during the readout burst")
        # Stuck bit: take a real burst, then corrupt its count.
        measurement = super()._read_measurement()
        corrupted = measurement.count | (1 << int(event.magnitude))
        if corrupted > self.ro.counter.max_count:
            raise CounterOverflowError(
                f"count {corrupted} exceeds the counter range (stuck bit "
                f"{int(event.magnitude)})"
            )
        if (
            self._last_good_count is not None
            and abs(corrupted - self._last_good_count) > self.PLAUSIBILITY_COUNTS
        ):
            raise MeasurementError(
                f"implausible count jump {self._last_good_count} -> {corrupted} "
                f"(stuck counter bit {int(event.magnitude)}?)"
            )
        # Within the plausibility band the corruption goes undetected —
        # exactly the silent data error a real stuck LSB produces.
        fref = self.ro.counter.fref
        return RoMeasurement(
            count=corrupted,
            frequency=2.0 * corrupted * fref,
            delay=1.0 / (4.0 * corrupted * fref),
            timestamp=measurement.timestamp,
        )

    def _record_sample(
        self, log: DataLog, case: str, phase: TestPhase, phase_elapsed: float
    ) -> None:
        """Sample with bounded retries; exhausting them raises
        :class:`~repro.errors.RetryExhaustedError` (quarantine)."""
        attempt = 0
        while True:
            try:
                record = self.take_sample(case, phase.label, phase_elapsed)
            except ChipDropoutError:
                raise
            except (InstrumentError, MeasurementError) as error:
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    raise RetryExhaustedError(
                        f"{self.chip.chip_id} case {case}: sample failed "
                        f"{attempt} times, last error: {error}"
                    ) from error
                self.retries_taken += 1
                self._retries.inc()
                wait = self.retry.backoff(attempt)
                with self.tracer.span(
                    "sample_retry",
                    chip_id=self.chip.chip_id,
                    case=case,
                    phase=phase.label,
                    attempt=attempt,
                    backoff_s=wait,
                ) as span:
                    # The operator re-arms the readout while the phase bias
                    # stays applied: the chip keeps aging through the wait.
                    self._apply_chunk(
                        phase,
                        wait,
                        self._delivered_temperature(),
                        self._delivered_voltage(),
                    )
                    span.set("sim_advanced", wait)
                continue
            log.append(record)
            self._records.inc()
            return


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Write ``payload`` to ``path`` so a crash never leaves a torn file.

    The JSON lands in ``<name>.tmp`` first, is flushed and fsynced, and
    only then atomically renamed over the target — a SIGKILL (or power
    loss) at any instant leaves either the previous complete file or the
    new complete file, never a truncation.  An interrupted write (ENOSPC,
    kill mid-dump) can leave the temp file behind; callers detect and
    discard those with :func:`discard_orphan_tmp` before reading.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        # Best effort: do not leave a half-written temp file around for
        # the next reader to trip on (ENOSPC is the classic cause).
        tmp.unlink(missing_ok=True)
        raise


def discard_orphan_tmp(directory: str | Path, pattern: str = "*.tmp") -> list[Path]:
    """Remove temp files a killed writer left behind, with a warning.

    A ``.tmp`` file in a checkpoint/sweep directory means a writer died
    between starting and committing an atomic write; its contents are at
    best stale and at worst truncated.  The committed files it was about
    to replace are still intact, so the right response on resume is to
    warn, drop the orphan, and carry on — never to crash.
    """
    directory = Path(directory)
    removed: list[Path] = []
    for orphan in sorted(directory.glob(pattern)):
        warnings.warn(
            f"{orphan}: discarding orphaned temp file from an interrupted "
            "write (the last committed state is still intact)",
            RuntimeWarning,
            stacklevel=2,
        )
        orphan.unlink(missing_ok=True)
        removed.append(orphan)
    return removed


#: On-disk checkpoint layout version (bump on incompatible changes).
CHECKPOINT_VERSION = 1


class CheckpointStore:
    """Per-chip campaign checkpoints in a directory.

    Layout::

        manifest.json           seed/shape of the campaign + per-chip progress
        <chip>.<g>.state.npz    trap occupancies and clocks (FpgaChip.export_state)
        <chip>.<g>.rng.json     bench RNG bit-generator state
        <chip>.<g>.baseline.csv baseline DataLog shard
        <chip>.<g>.cases.csv    case DataLog shard

    ``<g>`` is a per-chip generation number recorded in the manifest.
    Writes are crash-safe against SIGKILL: each save lands in fresh
    generation files, then the manifest is atomically replaced to point
    at them, then older generations are pruned — a kill at any instant
    leaves the manifest referencing a fully-written snapshot.  A lock
    serialises manifest updates from parallel chip workers.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Opening the store is the resume boundary: no writer is live yet,
        # so any .tmp here is an orphan from an interrupted save — warn
        # and drop it before a reader can mistake it for state.
        discard_orphan_tmp(self.directory)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #

    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def read_manifest(self) -> dict | None:
        """The manifest dict, or ``None`` if no checkpoint exists yet."""
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(f"{path}: unreadable manifest ({error})") from error

    def init_manifest(self, seed: int | None, n_chips: int, include_baseline: bool) -> dict:
        """Create (or validate and return) the manifest for this campaign.

        Resuming with a different seed or campaign shape would silently
        splice incompatible data, so a mismatch is a hard error.
        """
        manifest = self.read_manifest()
        if manifest is None:
            manifest = {
                "version": CHECKPOINT_VERSION,
                "seed": seed,
                "n_chips": n_chips,
                "include_baseline": include_baseline,
                "completed": {},
                "generations": {},
                "quarantined": {},
            }
            self._write_manifest(manifest)
            return manifest
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{self._manifest_path()}: checkpoint version "
                f"{manifest.get('version')} != {CHECKPOINT_VERSION}"
            )
        shape = {"seed": seed, "n_chips": n_chips, "include_baseline": include_baseline}
        for key, value in shape.items():
            if manifest.get(key) != value:
                raise CheckpointError(
                    f"{self._manifest_path()}: checkpoint was taken with "
                    f"{key}={manifest.get(key)!r}, cannot resume with {value!r}"
                )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_json(self._manifest_path(), manifest)

    # ------------------------------------------------------------------ #
    # per-chip state
    # ------------------------------------------------------------------ #

    def _generation_of(self, manifest: dict, chip_id: str) -> int:
        return int(manifest.get("generations", {}).get(chip_id, 0))

    def _prune_generations(self, chip_id: str, keep: int) -> None:
        """Best-effort removal of snapshot files older than ``keep``."""
        for path in self.directory.glob(f"{chip_id}.[0-9]*.*"):
            suffix = path.name[len(chip_id) + 1 :]
            try:
                generation = int(suffix.split(".", 1)[0])
            except ValueError:
                continue
            if generation < keep:
                path.unlink(missing_ok=True)

    def save_chip(
        self,
        chip,
        bench_rng: np.random.Generator,
        baseline_log: DataLog,
        case_log: DataLog,
        completed: list[str],
        quarantine: QuarantineReport | None = None,
    ) -> None:
        """Snapshot one chip after a completed case (or at quarantine).

        The snapshot is written to a fresh generation of files and only
        then referenced from the manifest, so a kill mid-save never
        corrupts the previous checkpoint.
        """
        chip_id = chip.chip_id
        with self._lock:
            manifest = self.read_manifest()
            if manifest is None:
                raise CheckpointError(
                    f"{self._manifest_path()}: manifest vanished mid-campaign"
                )
            generation = self._generation_of(manifest, chip_id) + 1
        prefix = f"{chip_id}.{generation}"
        np.savez(self.directory / f"{prefix}.state.npz", **chip.export_state())
        with open(self.directory / f"{prefix}.rng.json", "w") as handle:
            json.dump(bench_rng.bit_generator.state, handle)
        baseline_log.write_csv(self.directory / f"{prefix}.baseline.csv")
        case_log.write_csv(self.directory / f"{prefix}.cases.csv")
        with self._lock:
            manifest = self.read_manifest()
            if manifest is None:
                raise CheckpointError(
                    f"{self._manifest_path()}: manifest vanished mid-campaign"
                )
            manifest["completed"][chip_id] = list(completed)
            manifest.setdefault("generations", {})[chip_id] = generation
            if quarantine is not None:
                manifest["quarantined"][chip_id] = {
                    "case": quarantine.case,
                    "sim_time": quarantine.sim_time,
                    "reason": quarantine.reason,
                }
            self._write_manifest(manifest)
        self._prune_generations(chip_id, keep=generation)

    def load_chip(
        self, chip, bench_rng: np.random.Generator
    ) -> tuple[DataLog, DataLog, list[str], QuarantineReport | None] | None:
        """Restore a chip in place; return its shards and progress.

        ``None`` means no checkpoint exists for this chip (it starts
        fresh).  On success the chip's trap state and the bench RNG are
        rewound to the end of the last completed case.
        """
        manifest = self.read_manifest()
        chip_id = chip.chip_id
        if manifest is None or chip_id not in manifest["completed"]:
            return None
        generation = self._generation_of(manifest, chip_id)
        if generation < 1:
            raise CheckpointError(
                f"{self.directory}: manifest lists {chip_id} as checkpointed "
                "but records no snapshot generation for it"
            )
        prefix = f"{chip_id}.{generation}"
        try:
            with np.load(self.directory / f"{prefix}.state.npz") as data:
                chip.import_state({key: data[key] for key in data.files})
            with open(self.directory / f"{prefix}.rng.json") as handle:
                bench_rng.bit_generator.state = json.load(handle)
            baseline_log = DataLog.read_csv(self.directory / f"{prefix}.baseline.csv")
            case_log = DataLog.read_csv(self.directory / f"{prefix}.cases.csv")
        except (OSError, KeyError, ValueError, MeasurementError) as error:
            raise CheckpointError(
                f"{self.directory}: corrupt checkpoint for {chip_id} ({error})"
            ) from error
        completed = list(manifest["completed"][chip_id])
        quarantine = None
        entry = manifest.get("quarantined", {}).get(chip_id)
        if entry is not None:
            quarantine = QuarantineReport(
                chip_id=chip_id,
                case=entry["case"],
                sim_time=float(entry["sim_time"]),
                reason=entry["reason"],
            )
        return baseline_log, case_log, completed, quarantine

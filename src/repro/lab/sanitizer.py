"""Runtime determinism sanitizer: per-chip state hashes at phase ends.

The static flow passes (:mod:`repro.analysis.flow`) prove the *shape* of
the campaign is race-free; this module checks the *numbers*.  With
``repro campaign --sanitize`` every chip carries a
:class:`_ChipHasher` that folds, at each phase boundary, the records the
phase appended, the chip's trap-occupancy state and the bench RNG state
into a rolling SHA-256.  The digests land both in
``CampaignResult.state_hashes`` (for direct equality asserts) and in
``state_hash`` spans on the trace, so two runs — sequential vs
``--workers N``, or today vs last week — can be compared span-by-span
and ``repro trace diff`` pinpoints the first phase where chip state
diverged.

Hashes depend only on per-chip simulated history, never on wall clock or
worker scheduling, so sequential and parallel runs of the same seed must
produce identical digests.  A mismatch is a determinism bug by
definition — exactly what a registered-but-wrong merge claim
(:mod:`repro.analysis.flow.merge`) would produce.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from itertools import islice

import numpy as np


class _ChipHasher:
    """Rolling digest of one chip's measurement/trap/RNG history."""

    def __init__(self, chip_id: str) -> None:
        self.chip_id = chip_id
        self.seq = 0
        self._rolling = hashlib.sha256(chip_id.encode())

    def feed_records(self, records) -> None:
        """Fold measurement records (this phase's slice) into the digest."""
        for record in records:
            payload = tuple(getattr(record, f.name) for f in fields(record))
            self._rolling.update(repr(payload).encode())

    def snapshot(self, bench) -> str:
        """Point-in-time digest: rolling history + trap + RNG state."""
        digest = self._rolling.copy()
        state = bench.chip.export_state()
        for key in sorted(state):
            value = state[key]
            digest.update(key.encode())
            if isinstance(value, np.ndarray):
                digest.update(value.tobytes())
            else:
                digest.update(repr(float(value)).encode())
        digest.update(
            json.dumps(bench.rng_state, sort_keys=True, default=repr).encode()
        )
        return digest.hexdigest()[:16]


class DeterminismSanitizer:
    """Collects per-chip phase-boundary digests for one campaign run.

    One instance per sequential campaign; one per worker in parallel
    campaigns (chips are worker-disjoint, so merging the per-worker
    ``hashes`` dicts in chip order is deterministic).
    """

    enabled = True

    def __init__(self) -> None:
        self.hashes: dict[str, str] = {}
        self._hashers: dict[str, _ChipHasher] = {}

    def record_phase(self, tracer, bench, case_name, phase, log, start) -> str:
        """Hash one finished phase and emit its ``state_hash`` span.

        ``start`` is ``len(log)`` before the phase ran; the slice from
        there is exactly the records this phase appended — pure per-chip
        data in both the sequential log and the parallel shard logs.
        """
        chip_id = bench.chip.chip_id
        hasher = self._hashers.setdefault(chip_id, _ChipHasher(chip_id))
        hasher.feed_records(islice(log, start, None))
        state = hasher.snapshot(bench)
        seq = hasher.seq
        hasher.seq += 1
        self.hashes[f"{chip_id}/{seq:03d}"] = state
        with tracer.span(
            "state_hash",
            chip_id=chip_id,
            case=case_name,
            phase=phase.label,
            seq=seq,
            state=state,
        ):
            pass
        return state

    def absorb(self, other: "DeterminismSanitizer") -> None:
        """Fold a worker sanitizer's digests in (call in chip order)."""
        self.hashes.update(other.hashes)


class _NullSanitizer:
    """The do-nothing default: campaigns run unhashed."""

    enabled = False
    #: Always empty — record_phase never writes.
    hashes: dict[str, str] = {}

    def record_phase(self, tracer, bench, case_name, phase, log, start) -> str:
        """No-op; returns an empty digest."""
        return ""

    def absorb(self, other) -> None:
        """No-op."""


#: Shared inert instance — the default wherever a sanitizer is accepted.
NULL_SANITIZER = _NullSanitizer()

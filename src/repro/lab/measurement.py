"""Virtual testbench: wires a chip to the instruments and runs phases.

The testbench reproduces the paper's measurement discipline:

* the chamber temperature actually delivered to the chip jitters within
  +/-0.3 degC and is re-sampled every chunk, so aging sees realistic
  thermal noise;
* during DC stress and during recovery the RO sleeps and is woken every
  sampling interval for a ~3 s readout burst (the paper's "data sampling
  overhead is less than 3 s") — the burst itself briefly AC-stresses the
  chip at nominal rail, exactly as on hardware;
* each readout averages a few counter reads from a stable window.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.fpga.counter import ReadoutCounter
from repro.fpga.ring_oscillator import RingOscillator, StressMode
from repro.lab.clock_generator import ClockGenerator
from repro.lab.datalog import DataLog, MeasurementRecord
from repro.lab.power_supply import DcPowerSupply
from repro.lab.schedule import NOMINAL_RAIL, PhaseKind, TestPhase
from repro.lab.thermal_chamber import ThermalChamber
from repro.obs import get_tracer


class VirtualTestbench:
    """One chip under a thermal chamber, supply and readout chain.

    Parameters
    ----------
    chip:
        The :class:`~repro.fpga.chip.FpgaChip` under test.
    chamber / supply / clock:
        Virtual instruments; defaults reproduce the paper's setup.
    reads_per_sample:
        Counter readouts averaged per recorded sample.
    sampling_overhead:
        Seconds the RO runs (AC, nominal rail) per readout burst.
    rng:
        Seed or generator for every noise source on the bench.
    tracer:
        Telemetry sink for phase/measurement spans and sample counters;
        defaults to the process tracer (a no-op unless one was
        installed).
    """

    def __init__(
        self,
        chip,
        chamber: ThermalChamber | None = None,
        supply: DcPowerSupply | None = None,
        clock: ClockGenerator | None = None,
        reads_per_sample: int = 3,
        sampling_overhead: float = 3.0,
        rng: np.random.Generator | int | None = None,
        tracer=None,
    ) -> None:
        if reads_per_sample <= 0:
            raise ConfigurationError("reads_per_sample must be positive")
        if sampling_overhead < 0.0:
            raise ConfigurationError("sampling_overhead must be non-negative")
        self.chip = chip
        self.chamber = chamber or ThermalChamber()
        self.supply = supply or DcPowerSupply()
        self.clock = clock or ClockGenerator()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.ro = RingOscillator(
            chip, ReadoutCounter(fref=self.clock.frequency), tracer=self.tracer
        )
        self.reads_per_sample = reads_per_sample
        self.sampling_overhead = sampling_overhead
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self._samples = self.tracer.counter(
            "lab.samples", "RO readout samples taken by testbenches"
        )
        self._records = self.tracer.counter(
            "datalog.records", "measurement records appended to campaign logs"
        )

    @property
    def rng_state(self):
        """The bench RNG's bit-generator state (for determinism hashing)."""
        return self._rng.bit_generator.state

    def _delivered_temperature(self) -> float:
        """Chamber temperature (kelvin) the chip sees right now.

        Extension point: the resilience layer adds fault drift and chip
        dropout detection here without touching the nominal path.
        """
        return self.chamber.actual_temperature(self._rng)

    def _delivered_voltage(self) -> float:
        """Supply voltage (volts) the chip sees right now."""
        return self.supply.actual_voltage(self._rng)

    def _read_measurement(self):
        """One averaged RO readout burst (the fault-injectable step)."""
        return self.ro.measure_averaged(self.reads_per_sample, rng=self._rng)

    def take_sample(
        self, case: str, phase_label: str, phase_elapsed: float
    ) -> MeasurementRecord:
        """Wake the RO, average a few reads, and return the record.

        The readout burst applies ``sampling_overhead`` seconds of AC
        activity at nominal rail and chamber temperature — negligible
        aging, but modelled because hardware cannot measure for free.
        """
        with self.tracer.span(
            "measurement",
            chip_id=self.chip.chip_id,
            case=case,
            phase=phase_label,
        ) as span:
            if self.sampling_overhead > 0.0:
                self.chip.apply_stress(
                    self.sampling_overhead,
                    temperature=self._delivered_temperature(),
                    supply_voltage=NOMINAL_RAIL,
                    mode=StressMode.AC,
                )
            try:
                measurement = self._read_measurement()
            except MeasurementError as error:
                raise type(error)(
                    f"{self.chip.chip_id} case {case} phase {phase_label}: {error}"
                ) from error
            self._samples.inc()
            span.set("sim_advanced", self.sampling_overhead)
            return MeasurementRecord(
                chip_id=self.chip.chip_id,
                case=case,
                phase=phase_label,
                timestamp=self.chip.elapsed,
                phase_elapsed=phase_elapsed,
                count=measurement.count,
                frequency=measurement.frequency,
                delay=measurement.delay,
                temperature_c=self.chamber.setpoint_celsius,
                # A rail behind an open relay delivers 0 V no matter what
                # the setpoint register holds.
                supply_voltage=(
                    self.supply.setpoint if self.supply.output_enabled else 0.0
                ),
            )

    def _apply_chunk(
        self, phase: TestPhase, chunk: float, temperature: float, voltage: float
    ) -> None:
        """Advance the chip through ``chunk`` seconds of the phase bias."""
        if phase.kind is PhaseKind.STRESS:
            self.chip.apply_stress(
                chunk,
                temperature=temperature,
                supply_voltage=voltage,
                mode=phase.mode,
            )
        else:
            self.chip.apply_recovery(
                chunk, temperature=temperature, supply_voltage=voltage
            )

    def _record_sample(
        self, log: DataLog, case: str, phase: TestPhase, phase_elapsed: float
    ) -> None:
        """Take one sample and append it to ``log``.

        Extension point: the resilience layer wraps this with bounded
        retries and deterministic backoff.
        """
        log.append(self.take_sample(case, phase.label, phase_elapsed))
        self._records.inc()

    def run_phase(self, phase: TestPhase, case: str, log: DataLog) -> None:
        """Execute one phase, recording samples into ``log``.

        A sample is taken at the start of the phase (time 0 — the paper's
        recovery figures anchor there) and after every sampling interval.
        """
        with self.tracer.span(
            "phase",
            chip_id=self.chip.chip_id,
            case=case,
            phase=phase.label,
            kind=phase.kind.value,
            temperature_c=phase.temperature_c,
            supply_voltage=phase.supply_voltage,
        ) as span:
            sim_start = self.chip.elapsed
            self.chamber.set_temperature_celsius(phase.temperature_c)
            # Exact sentinel: 0.0 V comes straight from the schedule
            # grammar (case suffix "Z"), never from arithmetic.
            if phase.kind is PhaseKind.RECOVERY and phase.supply_voltage == 0.0:  # repro: noqa[RPR003]
                # Passive recovery power-gates the rail: the relay opens and
                # the chip sees exactly 0 V, not a noisy millivolt setpoint.
                self.supply.set_voltage(0.0)
                self.supply.disable_output()
            else:
                self.supply.enable_output()
                self.supply.set_voltage(phase.supply_voltage)
            self._record_sample(log, case, phase, 0.0)
            elapsed = 0.0
            # Summing float chunks can stall a hair short of the duration
            # (e.g. ten 0.1 s intervals sum to 0.9999999999999999); without
            # a tolerance the loop would schedule a spurious near-zero
            # final chunk and log a duplicate sample.
            tolerance = 1e-9 * phase.duration
            while phase.duration - elapsed > tolerance:
                chunk = min(phase.sampling_interval, phase.duration - elapsed)
                temperature = self._delivered_temperature()
                voltage = self._delivered_voltage()
                self._apply_chunk(phase, chunk, temperature, voltage)
                elapsed += chunk
                if phase.duration - elapsed <= tolerance:
                    elapsed = phase.duration
                self._record_sample(log, case, phase, elapsed)
            span.set("sim_advanced", self.chip.elapsed - sim_start)

"""Measurement records and the campaign data log."""

from __future__ import annotations

import csv
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class MeasurementRecord:
    """One RO readout taken during a campaign.

    Times are simulated seconds; ``phase_elapsed`` is relative to the start
    of the phase the sample was taken in (what the paper's per-figure time
    axes show).
    """

    chip_id: str
    case: str
    phase: str
    timestamp: float
    phase_elapsed: float
    count: int
    frequency: float
    delay: float
    temperature_c: float
    supply_voltage: float


class DataLog:
    """Append-only store of :class:`MeasurementRecord` with query helpers."""

    def __init__(self) -> None:
        self._records: list[MeasurementRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MeasurementRecord]:
        return iter(self._records)

    def append(self, record: MeasurementRecord) -> None:
        """Add one record (records must arrive in time order per chip)."""
        self._records.append(record)

    def extend(self, records: Iterable[MeasurementRecord]) -> None:
        """Add many records."""
        self._records.extend(records)

    @classmethod
    def merge(cls, logs: Iterable["DataLog"]) -> "DataLog":
        """Concatenate shard logs into one.

        Ordering guarantee: the result is the *stable* concatenation of
        the shards — records keep their within-shard order, and every
        record of shard ``i`` precedes every record of shard ``i + 1``.
        Callers pick a canonical shard order (the parallel campaign uses
        chip order) so merged logs are deterministic regardless of which
        worker finished first.
        """
        merged = cls()
        for log in logs:
            merged._records.extend(log._records)
        return merged

    def filter(
        self,
        chip_id: str | None = None,
        case: str | None = None,
        phase: str | None = None,
    ) -> "DataLog":
        """New log holding only the records matching every given key."""
        selected = DataLog()
        for record in self._records:
            if chip_id is not None and record.chip_id != chip_id:
                continue
            if case is not None and record.case != case:
                continue
            if phase is not None and record.phase != phase:
                continue
            selected.append(record)
        return selected

    def cases(self) -> list[str]:
        """Distinct case names in insertion order."""
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.case, None)
        return list(seen)

    def series(self, field: str = "delay") -> tuple[np.ndarray, np.ndarray]:
        """(phase_elapsed, value) arrays for plotting/fitting.

        ``field`` is any numeric attribute of :class:`MeasurementRecord`.
        """
        if not self._records:
            raise MeasurementError("the data log is empty")
        times = np.array([r.phase_elapsed for r in self._records])
        try:
            values = np.array([getattr(r, field) for r in self._records], dtype=float)
        except AttributeError:
            raise MeasurementError(f"records have no field {field!r}") from None
        return times, values

    def first(self) -> MeasurementRecord:
        """Earliest record in the log."""
        if not self._records:
            raise MeasurementError("the data log is empty")
        return self._records[0]

    def last(self) -> MeasurementRecord:
        """Latest record in the log."""
        if not self._records:
            raise MeasurementError("the data log is empty")
        return self._records[-1]

    def write_csv(self, path: str | Path) -> None:
        """Dump every record to a CSV file with a header row."""
        names = [f.name for f in fields(MeasurementRecord)]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for record in self._records:
                writer.writerow([getattr(record, name) for name in names])

    @classmethod
    def read_csv(cls, path: str | Path) -> "DataLog":
        """Load a log previously written by :meth:`write_csv`.

        Malformed files raise :class:`~repro.errors.MeasurementError`
        naming the file and the 1-based line number of the bad row, so a
        truncated or hand-edited log points at itself rather than dying
        with a bare ``KeyError``.  A file with no header row at all (empty,
        or data where the header should be) is refused too — ``DictReader``
        would otherwise yield nothing and silently return an empty log.
        """
        log = cls()
        expected = [f.name for f in fields(MeasurementRecord)]
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise MeasurementError(
                    f"{path}: empty file — expected a header row "
                    f"{','.join(expected)}"
                )
            missing = [name for name in expected if name not in reader.fieldnames]
            if missing:
                raise MeasurementError(
                    f"{path}: header row is missing column(s) "
                    f"{', '.join(missing)} — not a DataLog CSV?"
                )
            # Header is line 1; DictReader rows start on line 2.
            for line_no, row in enumerate(reader, start=2):
                try:
                    record = MeasurementRecord(
                        chip_id=row["chip_id"],
                        case=row["case"],
                        phase=row["phase"],
                        timestamp=float(row["timestamp"]),
                        phase_elapsed=float(row["phase_elapsed"]),
                        count=int(row["count"]),
                        frequency=float(row["frequency"]),
                        delay=float(row["delay"]),
                        temperature_c=float(row["temperature_c"]),
                        supply_voltage=float(row["supply_voltage"]),
                    )
                except (KeyError, TypeError, ValueError) as error:
                    raise MeasurementError(
                        f"{path}:{line_no}: malformed measurement row "
                        f"({type(error).__name__}: {error})"
                    ) from error
                log.append(record)
        return log

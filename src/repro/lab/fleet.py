"""Wafer-lot campaign driver: lock-step phases over a batched fleet.

The scalar campaign walks one :class:`~repro.lab.measurement.VirtualTestbench`
per chip.  This module drives a :class:`~repro.fpga.fleet.FleetChip`
through the same Table 1 discipline in *lock-step groups*: all chips
running the same phase advance chunk by chunk together, with one batched
``evolve`` per chunk and per-chip instrument noise drawn from each chip's
own bench stream — in exactly the order the scalar bench draws it.  In
the exact fidelity every record, trap state and sanitizer digest is
bit-identical to :func:`~repro.lab.campaign.run_table1_campaign` on the
same seed (the fleet acceptance bar).

Scale-out is layered on top:

* **batches** — a lot larger than ``batch_size`` is simulated in
  consecutive chip windows so the struct-of-arrays state stays inside
  a memory budget;
* **shards** (``--shard N``) — contiguous chip ranges dispatched to
  worker processes; every worker re-derives the full per-chip stream
  table from the master seed, so the shard cut never moves a stream,
  and the parent merges per-chip shard results with the existing
  deterministic merge discipline (chip order decides everything).

Schedule: fleet chip ``i`` (0-based) runs the Table 1 sequence of paper
chip ``(i % 5) + 1`` — the five-row schedule tiled across the lot.  For
``n_chips <= 5`` this is exactly the paper's assignment, which is what
makes the 5-chip fleet comparable to the sequential campaign.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, MeasurementError, ScheduleError
from repro.fpga.counter import ReadoutCounter
from repro.fpga.fleet import FleetChip
from repro.fpga.ring_oscillator import StressMode
from repro.lab.campaign import CampaignResult
from repro.lab.faults import FaultInjector, FaultKind, FaultPlan
from repro.lab.clock_generator import ClockGenerator
from repro.lab.datalog import DataLog, MeasurementRecord
from repro.lab.power_supply import DcPowerSupply
from repro.lab.sanitizer import DeterminismSanitizer, NULL_SANITIZER
from repro.lab.schedule import (
    CHIP_SEQUENCES,
    NOMINAL_RAIL,
    PhaseKind,
    TestPhase,
    baseline_phase,
    standard_case,
)
from repro.lab.thermal_chamber import ThermalChamber
from repro.obs import NULL_PROGRESS, get_tracer

#: Memory-budget defaults: flat per-trap state is ~350k doubles per chip,
#: binned cell state a few thousand floats — sized for a ~200 MB ceiling.
DEFAULT_BATCH = {"exact": 64, "binned": 512}

#: Fleet lots larger than this default to the binned fidelity under
#: ``fidelity="auto"``; at or below it they stay exact (bit-identical).
AUTO_EXACT_LIMIT = 8

#: Fault kinds the batched fleet path can inject.  Instrument faults
#: (thermal drift, supply droop, relay chatter, readout faults) and chip
#: dropouts need the scalar bench's per-chip delivered-value hooks and
#: quarantine machinery — use :func:`~repro.lab.campaign.run_table1_campaign`
#: for those.  Trap-state upsets act directly on the batched trap arrays,
#: so they work at fleet scale in both fidelities.
FLEET_SUPPORTED_FAULT_KINDS = frozenset({FaultKind.TRAP_UPSET})


def fleet_chip_no(index: int) -> int:
    """Paper chip number (1-5) simulated at fleet position ``index``."""
    return (index % 5) + 1


class _FleetChipStateProxy:
    """Duck-typed ``bench.chip`` for the determinism sanitizer."""

    def __init__(self, fleet: FleetChip, index: int) -> None:
        self._fleet = fleet
        self._index = index
        self.chip_id = fleet.chip_ids[index]

    def export_state(self) -> dict:
        return self._fleet.export_chip_state(self._index)


class _FleetBenchProxy:
    """Duck-typed bench (chip + RNG state) for the sanitizer hasher."""

    def __init__(self, fleet: FleetChip, index: int, rng: np.random.Generator) -> None:
        self.chip = _FleetChipStateProxy(fleet, index)
        self._rng = rng

    @property
    def rng_state(self):
        return self._rng.bit_generator.state


class FleetBench:
    """Lock-step instrument stack over one :class:`FleetChip` batch.

    One shared chamber/supply/counter (chips in a lock-step group always
    share setpoints) plus one bench RNG *per chip* for the delivered-value
    jitter and readout noise — stream-per-stream identical to N scalar
    :class:`~repro.lab.measurement.VirtualTestbench` instances.
    """

    def __init__(
        self,
        fleet: FleetChip,
        rngs,
        tracer=None,
        reads_per_sample: int = 3,
        sampling_overhead: float = 3.0,
        injectors=None,
    ) -> None:
        if len(rngs) != fleet.n_chips:
            raise ConfigurationError("one bench RNG per fleet chip is required")
        if injectors is not None and len(injectors) != fleet.n_chips:
            raise ConfigurationError("one fault injector (or None) per fleet chip")
        self.fleet = fleet
        self.rngs = list(rngs)
        self.injectors = list(injectors) if injectors is not None else None
        self.tracer = tracer if tracer is not None else get_tracer()
        self.chamber = ThermalChamber()
        self.supply = DcPowerSupply()
        self.clock = ClockGenerator()
        self.counter = ReadoutCounter(fref=self.clock.frequency)
        self.reads_per_sample = reads_per_sample
        self.sampling_overhead = sampling_overhead
        self._samples = self.tracer.counter(
            "lab.samples", "RO readout samples taken by testbenches"
        )
        self._records = self.tracer.counter(
            "datalog.records", "measurement records appended to campaign logs"
        )
        self._cases = self.tracer.counter(
            "campaign.cases", "test cases executed across campaigns"
        )

    def bench_proxy(self, index: int) -> _FleetBenchProxy:
        """Sanitizer-compatible view of one chip's bench state."""
        return _FleetBenchProxy(self.fleet, index, self.rngs[index])

    def run_case(
        self,
        chips: slice,
        case_names,
        phases,
        logs,
        sanitizer=NULL_SANITIZER,
    ) -> None:
        """Run one case's phases on a lock-step group.

        ``case_names`` has one entry per chip in the span (baselines are
        per-chip names); ``logs`` is the full per-chip record-list table
        of the batch, indexed by fleet position.
        """
        lo, hi, _ = chips.indices(self.fleet.n_chips)
        with self.tracer.span(
            "case", case=case_names[0], chip_id=self.fleet.chip_ids[lo], fleet=hi - lo
        ):
            for phase in phases:
                starts = [len(logs[index]) for index in range(lo, hi)]
                self.run_phase(phase, chips, case_names, logs)
                if sanitizer.enabled:
                    for offset, index in enumerate(range(lo, hi)):
                        sanitizer.record_phase(
                            self.tracer,
                            self.bench_proxy(index),
                            case_names[offset],
                            phase,
                            logs[index],
                            starts[offset],
                        )
        self._cases.inc(hi - lo)

    def run_phase(self, phase: TestPhase, chips: slice, case_names, logs) -> None:
        """One phase over a lock-step group, chunked at the sampling interval.

        The chunk loop, relay discipline, float-sum tolerance and per-chip
        draw order (chamber jitter, supply jitter, readout burst) mirror
        ``VirtualTestbench.run_phase`` exactly.
        """
        lo, hi, _ = chips.indices(self.fleet.n_chips)
        with self.tracer.span(
            "phase",
            chip_id=self.fleet.chip_ids[lo],
            case=case_names[0],
            phase=phase.label,
            kind=phase.kind.value,
            fleet=hi - lo,
        ) as span:
            sim_start = float(self.fleet.elapsed[lo])
            self.chamber.set_temperature_celsius(phase.temperature_c)
            # Exact sentinel: 0.0 V comes straight from the schedule
            # grammar (case suffix "Z"), never from arithmetic.
            if phase.kind is PhaseKind.RECOVERY and phase.supply_voltage == 0.0:  # repro: noqa[RPR003]
                self.supply.set_voltage(0.0)
                self.supply.disable_output()
            else:
                self.supply.enable_output()
                self.supply.set_voltage(phase.supply_voltage)
            self._sample_group(phase, chips, case_names, logs, 0.0)
            elapsed = 0.0
            tolerance = 1e-9 * phase.duration
            while phase.duration - elapsed > tolerance:
                chunk = min(phase.sampling_interval, phase.duration - elapsed)
                self._inject_due_upsets(lo, hi)
                temperatures = np.array(
                    [self.chamber.actual_temperature(rng) for rng in self.rngs[lo:hi]]
                )
                if self.supply.output_enabled:
                    voltages = np.array(
                        [self.supply.actual_voltage(rng) for rng in self.rngs[lo:hi]]
                    )
                else:
                    voltages = np.zeros(hi - lo)
                if phase.kind is PhaseKind.STRESS:
                    self.fleet.apply_stress(
                        chunk, temperatures, voltages, mode=phase.mode, chips=chips
                    )
                else:
                    self.fleet.apply_recovery(chunk, temperatures, voltages, chips=chips)
                elapsed += chunk
                if phase.duration - elapsed <= tolerance:
                    elapsed = phase.duration
                self._sample_group(phase, chips, case_names, logs, elapsed)
            span.set("sim_advanced", float(self.fleet.elapsed[lo]) - sim_start)

    def _inject_due_upsets(self, lo: int, hi: int) -> None:
        """Land any due trap-state upsets before the next batched evolve.

        Mirrors the scalar ``ResilientBench._apply_chunk`` semantics: the
        bogus occupancy sits in the trap arrays until the next chunk's
        evolve, where the guard contract catches it (raise mode) or clamps
        it back into domain (clamp mode).
        """
        if self.injectors is None:
            return
        for index in range(lo, hi):
            injector = self.injectors[index]
            if injector is None:
                continue
            upset = injector.pop_upset(float(self.fleet.elapsed[index]))
            if upset is not None:
                self.fleet.inject_trap_upset_chip(index, upset.magnitude)

    def _sample_group(
        self, phase: TestPhase, chips: slice, case_names, logs, phase_elapsed: float
    ) -> None:
        """One readout burst per chip of the group, batched physics.

        Per chip: one chamber draw for the burst temperature, then one
        vectorised counter-noise draw — the scalar ``take_sample`` stream.
        """
        lo, hi, _ = chips.indices(self.fleet.n_chips)
        if self.sampling_overhead > 0.0:
            burst_temps = np.array(
                [self.chamber.actual_temperature(rng) for rng in self.rngs[lo:hi]]
            )
            self.fleet.apply_stress(
                self.sampling_overhead,
                burst_temps,
                np.full(hi - lo, NOMINAL_RAIL),
                mode=StressMode.AC,
                chips=chips,
            )
        frequencies = self.fleet.frequencies(chips)
        guard = self.fleet.guard
        temperature_c = self.chamber.setpoint_celsius
        supply_voltage = self.supply.setpoint if self.supply.output_enabled else 0.0
        fref = self.counter.fref
        reads = self.reads_per_sample
        noise = self.counter.noise_counts
        max_count = self.counter.max_count
        elapsed = self.fleet.elapsed
        chip_ids = self.fleet.chip_ids
        # One vectorised precheck instead of a per-chip guard call: the
        # per-chip positive_scalar only changes behaviour on a violation,
        # so a clean group can skip straight to the readout.
        clean = bool(np.isfinite(frequencies).all()) and bool((frequencies > 0.0).all())
        for offset, index in enumerate(range(lo, hi)):
            frequency = float(frequencies[offset])
            if not clean and guard.checking:
                frequency = guard.positive_scalar(
                    "fpga.frequency",
                    frequency,
                    clamp_to=0.0,
                    inputs=lambda: {"chip": chip_ids[index]},
                )
            rng = self.rngs[index]
            if clean and noise > 0:
                # Stream-identical inline form of ReadoutCounter.read_many:
                # the same single noise draw, with the clamp/overflow edge
                # regions handed back to the instrument's exact arithmetic.
                ideal = int(round(frequency / (2.0 * fref)))
                draws = rng.integers(-noise, noise + 1, size=reads)
                if 0 <= ideal - noise and ideal + noise <= max_count:
                    total = ideal * reads + int(draws.sum())
                else:
                    counts = ideal + draws
                    np.maximum(counts, 0, out=counts)
                    self.counter._check_overflow(int(counts.max()))
                    total = int(counts.sum())
                mean_count = total / float(reads)
            else:
                try:
                    counts = self.counter.read_many(frequency, reads, rng=rng)
                except MeasurementError as error:
                    raise type(error)(
                        f"{chip_ids[index]} case {case_names[offset]} "
                        f"phase {phase.label}: {error}"
                    ) from error
                mean_count = float(np.mean(counts))
            if mean_count <= 0:
                raise MeasurementError(
                    f"chip {chip_ids[index]}: readout count "
                    f"{mean_count} implies no oscillation"
                )
            logs[index].append(
                MeasurementRecord(
                    chip_id=chip_ids[index],
                    case=case_names[offset],
                    phase=phase.label,
                    timestamp=float(elapsed[index]),
                    phase_elapsed=phase_elapsed,
                    count=int(round(mean_count)),
                    frequency=2.0 * mean_count * fref,
                    delay=1.0 / (4.0 * mean_count * fref),
                    temperature_c=temperature_c,
                    supply_voltage=supply_voltage,
                )
            )
        self._samples.inc(hi - lo)
        self._records.inc(hi - lo)


# ---------------------------------------------------------------------- #
# campaign assembly
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FleetChipSummary:
    """Distribution-ready digest of one fleet chip's campaign.

    ``case_end_frequency`` maps each case the chip ran (baseline
    included) to the measured RO frequency at that case's final sample.
    Degradations are percentages relative to the model-fresh frequency,
    positive = slower than fresh.
    """

    chip_id: str
    chip_no: int
    fresh_delay: float
    fresh_frequency: float
    case_end_frequency: dict[str, float]
    stress_degradation_pct: float
    residual_degradation_pct: float
    measurements: int


@dataclass
class FleetCampaignResult(CampaignResult):
    """A :class:`CampaignResult` plus the fleet's population statistics.

    ``chips`` stays empty — 10k live chip objects defeat the point of the
    batched engine; per-chip state is summarised in ``summaries``.  In
    ``collect="summary"`` mode the log keeps only each phase's first and
    last record per chip (the distribution pipeline reads summaries, the
    hashes cover the full record stream regardless).
    """

    summaries: list[FleetChipSummary] = field(default_factory=list)
    fidelity: str = "exact"
    total_measurements: int = 0
    shards: int = 1


def _chip_summary(
    chip_id: str, chip_no: int, fresh_delay: float, records
) -> FleetChipSummary:
    """Fold one chip's full record stream into a summary."""
    fresh_frequency = 1.0 / (2.0 * fresh_delay)
    case_end: dict[str, float] = {}
    for record in records:
        case_end[record.case] = record.frequency
    stress_end = [
        frequency
        for case, frequency in case_end.items()
        if case.startswith("AS") or case.startswith("BASELINE")
    ]
    worst = min(stress_end) if stress_end else fresh_frequency
    final = records[-1].frequency if records else fresh_frequency
    return FleetChipSummary(
        chip_id=chip_id,
        chip_no=chip_no,
        fresh_delay=fresh_delay,
        fresh_frequency=fresh_frequency,
        case_end_frequency=case_end,
        stress_degradation_pct=100.0 * (1.0 - worst / fresh_frequency),
        residual_degradation_pct=100.0 * (1.0 - final / fresh_frequency),
        measurements=len(records),
    )


def _trim_phase_records(records: list, start: int) -> None:
    """Summary-mode compression: keep a phase's first and last record."""
    added = len(records) - start
    if added > 2:
        del records[start + 1 : len(records) - 1]


def _run_fleet_range(
    seed: int | None,
    n_chips: int,
    chip_lo: int,
    chip_hi: int,
    include_baseline: bool,
    fidelity: str,
    batch_size: int,
    bins_per_decade: float,
    sanitize: bool,
    collect: str,
    faults: FaultPlan | None = None,
    guard=None,
    tracer=None,
    progress=NULL_PROGRESS,
):
    """Simulate fleet positions ``[chip_lo, chip_hi)`` of an ``n_chips`` lot.

    Every worker re-derives the complete per-chip stream table from the
    master seed — streams never depend on the shard cut — then runs its
    range in memory-bounded batches.  Returns per-chip results in chip
    order: ``(baseline_records, case_records, summary)`` lists plus the
    sanitizer hashes and the measurement count.
    """
    tracer = tracer if tracer is not None else get_tracer()
    master = np.random.default_rng(seed)
    chip_seeds: dict[int, int] = {}
    bench_streams: dict[int, np.random.Generator] = {}
    for index in range(n_chips):
        chip_stream, bench_stream = master.spawn(2)
        if chip_lo <= index < chip_hi:
            chip_seeds[index] = int(chip_stream.integers(2**31))
            bench_streams[index] = bench_stream
    baseline_records: dict[int, list] = {}
    case_records: dict[int, list] = {}
    summaries: dict[int, FleetChipSummary] = {}
    fresh_delays: dict[int, float] = {}
    hashes: dict[str, str] = {}
    total_measurements = 0
    sanitizer = DeterminismSanitizer() if sanitize else NULL_SANITIZER

    for batch_lo in range(chip_lo, chip_hi, batch_size):
        batch = list(range(batch_lo, min(batch_lo + batch_size, chip_hi)))
        # Lock-step groups must be contiguous in fleet order: arrange the
        # batch by schedule row.  Bit-identity only depends on per-chip
        # streams and the final chip-order merge, never on group layout.
        order = sorted(batch, key=lambda index: (fleet_chip_no(index), index))
        fleet = FleetChip(
            [f"chip-{index + 1}" for index in order],
            [chip_seeds[index] for index in order],
            fidelity=fidelity,
            bins_per_decade=bins_per_decade,
            guard=guard,
            tracer=tracer,
        )
        injectors = None
        if faults is not None:
            injectors = [
                FaultInjector(faults, f"chip-{index + 1}", tracer=tracer)
                if faults.for_chip(f"chip-{index + 1}")
                else None
                for index in order
            ]
        bench = FleetBench(
            fleet,
            [bench_streams[index] for index in order],
            tracer=tracer,
            injectors=injectors,
        )
        logs: list[list] = [[] for _ in order]
        baselines: list[list] = [[] for _ in order]
        for position, index in enumerate(order):
            fresh_delays[index] = float(fleet.fresh_path_delays[position])
        if include_baseline:
            starts = [0] * len(order)
            bench.run_case(
                slice(0, len(order)),
                [f"BASELINE-{fleet.chip_ids[position]}" for position in range(len(order))],
                [baseline_phase()],
                baselines,
                sanitizer,
            )
            total_measurements += sum(len(log) for log in baselines)
            if collect == "summary":
                for position, start in enumerate(starts):
                    _trim_phase_records(baselines[position], start)
        position = 0
        while position < len(order):
            chip_no = fleet_chip_no(order[position])
            group_end = position
            while group_end < len(order) and fleet_chip_no(order[group_end]) == chip_no:
                group_end += 1
            group = slice(position, group_end)
            for name in CHIP_SEQUENCES[chip_no]:
                case = standard_case(name, chip_no)
                starts = [len(logs[p]) for p in range(position, group_end)]
                bench.run_case(
                    group, [case.name] * (group_end - position), case.phases, logs, sanitizer
                )
                total_measurements += sum(
                    len(logs[p]) - starts[p - position]
                    for p in range(position, group_end)
                )
                if collect == "summary":
                    for p, start in zip(range(position, group_end), starts):
                        _trim_phase_records(logs[p], start)
            position = group_end
        for position, index in enumerate(order):
            baseline_records[index] = baselines[position]
            case_records[index] = logs[position]
            summaries[index] = _chip_summary(
                fleet.chip_ids[position],
                fleet_chip_no(index),
                fresh_delays[index],
                baselines[position] + logs[position],
            )
        progress.line(
            f"fleet chips {batch[0] + 1}-{batch[-1] + 1}/{n_chips} done ({fidelity})"
        )
        hashes.update(sanitizer.hashes)
        sanitizer = DeterminismSanitizer() if sanitize else NULL_SANITIZER
    ordered = sorted(baseline_records)
    return (
        [baseline_records[index] for index in ordered],
        [case_records[index] for index in ordered],
        [summaries[index] for index in ordered],
        {index: fresh_delays[index] for index in ordered},
        hashes,
        total_measurements,
    )


def _shard_worker(args) -> tuple:
    """Process-pool entry point: run one contiguous fleet shard."""
    return _run_fleet_range(*args)


def run_fleet_campaign(
    seed: int | None = 0,
    n_chips: int = 5,
    include_baseline: bool = True,
    fidelity: str = "auto",
    batch_size: int | None = None,
    shards: int = 1,
    sanitize: bool = False,
    collect: str = "records",
    bins_per_decade: float = 3.0,
    tracer=None,
    progress=None,
    faults: FaultPlan | None = None,
    retry=None,
    checkpoint=None,
    resume: bool = False,
    guard=None,
) -> FleetCampaignResult:
    """Run Table 1 over an ``n_chips`` lot through the fleet engine.

    ``fidelity="auto"`` picks ``"exact"`` (bit-identical to
    :func:`~repro.lab.campaign.run_table1_campaign`) up to
    :data:`AUTO_EXACT_LIMIT` chips and ``"binned"`` (population-scale)
    above.  ``shards > 1`` fans contiguous chip ranges out to worker
    processes; the merged result is bit-identical to ``shards=1`` for
    any shard count.  ``collect="summary"`` keeps only phase-boundary
    records per chip (memory-bounded 10k-chip runs); summaries and
    hashes always cover the full measurement stream.

    Resilience support is a strict subset of the scalar campaign's, and
    every unsupported option raises :class:`ConfigurationError` instead
    of being silently ignored:

    * ``faults``: only :data:`FLEET_SUPPORTED_FAULT_KINDS` (trap-state
      upsets, which act directly on the batched trap arrays).  Instrument
      faults and chip dropouts need the scalar bench.
    * ``guard``: a :class:`~repro.guard.contracts.GuardConfig` whose
      ``violation_budget`` is ``None`` — fleet chips share one batched
      guard, so per-chip budgets/quarantine cannot be enforced here.
    * ``retry`` / ``checkpoint`` / ``resume``: never supported — the
      fleet path has no per-chip retry loop or snapshot store.
    * ``faults``/``guard`` cannot be combined with ``shards > 1`` (the
      shard cut would need per-worker plan plumbing).
    """
    if n_chips <= 0:
        raise ScheduleError(f"n_chips must be positive, got {n_chips}")
    if shards < 1:
        raise ScheduleError(f"shards must be at least 1, got {shards}")
    if collect not in ("records", "summary"):
        raise ConfigurationError(f"collect must be 'records' or 'summary', got {collect!r}")
    if retry is not None:
        raise ConfigurationError(
            "run_fleet_campaign does not support retry=: the fleet path has "
            "no per-chip readout retry loop; use run_table1_campaign"
        )
    if checkpoint is not None:
        raise ConfigurationError(
            "run_fleet_campaign does not support checkpoint=: fleet runs "
            "have no snapshot store; use run_table1_campaign"
        )
    if resume:
        raise ConfigurationError(
            "run_fleet_campaign does not support resume=True: fleet runs "
            "have no snapshot store to resume from; use run_table1_campaign"
        )
    if faults is not None:
        unsupported = sorted(
            {event.kind.value for event in faults.events}
            - {kind.value for kind in FLEET_SUPPORTED_FAULT_KINDS}
        )
        if unsupported:
            supported = sorted(kind.value for kind in FLEET_SUPPORTED_FAULT_KINDS)
            raise ConfigurationError(
                f"run_fleet_campaign faults= plan contains unsupported fault "
                f"kinds {unsupported}; the fleet path supports only "
                f"{supported} (use run_table1_campaign for the rest)"
            )
        if shards > 1:
            raise ConfigurationError(
                "run_fleet_campaign does not support faults= with shards > 1"
            )
    if guard is not None:
        if getattr(guard, "violation_budget", None) is not None:
            raise ConfigurationError(
                "run_fleet_campaign does not support guard= with a "
                "violation_budget: fleet chips share one batched guard, so "
                "per-chip budgets cannot be enforced; use run_table1_campaign"
            )
        if shards > 1:
            raise ConfigurationError(
                "run_fleet_campaign does not support guard= with shards > 1"
            )
    if fidelity == "auto":
        fidelity = "exact" if n_chips <= AUTO_EXACT_LIMIT else "binned"
    if fidelity not in ("exact", "binned"):
        raise ConfigurationError(f"unknown fleet fidelity {fidelity!r}")
    if batch_size is None:
        batch_size = DEFAULT_BATCH[fidelity]
    tracer = tracer if tracer is not None else get_tracer()
    progress = progress if progress is not None else NULL_PROGRESS
    shards = min(shards, n_chips)

    with tracer.span(
        "campaign", seed=seed, n_chips=n_chips, fleet=True, fidelity=fidelity,
        shards=shards,
    ) as span:
        if shards == 1:
            fleet_guard = None
            if guard is not None:
                from repro.guard import Guard

                fleet_guard = Guard(guard, tracer=tracer, owner="fleet")
            shard_results = [
                _run_fleet_range(
                    seed, n_chips, 0, n_chips, include_baseline, fidelity,
                    batch_size, bins_per_decade, sanitize, collect,
                    faults=faults, guard=fleet_guard,
                    tracer=tracer, progress=progress,
                )
            ]
        else:
            bounds = np.linspace(0, n_chips, shards + 1).astype(int)
            jobs = [
                (
                    seed, n_chips, int(bounds[shard]), int(bounds[shard + 1]),
                    include_baseline, fidelity, batch_size, bins_per_decade,
                    sanitize, collect,
                )
                for shard in range(shards)
                if bounds[shard] < bounds[shard + 1]
            ]
            with ProcessPoolExecutor(max_workers=shards) as pool:
                shard_results = list(pool.map(_shard_worker, jobs))
            progress.line(f"{len(jobs)} fleet shards merged")

        baseline_logs: list[DataLog] = []
        case_logs: list[DataLog] = []
        summaries: list[FleetChipSummary] = []
        fresh_delays: dict[str, float] = {}
        state_hashes: dict[str, str] = {}
        total_measurements = 0
        for baselines, cases, shard_summaries, shard_fresh, hashes, count in shard_results:
            for records in baselines:
                log = DataLog()
                log.extend(records)
                baseline_logs.append(log)
            for records in cases:
                log = DataLog()
                log.extend(records)
                case_logs.append(log)
            summaries.extend(shard_summaries)
            for index, fresh in shard_fresh.items():
                fresh_delays[f"chip-{index + 1}"] = fresh
            state_hashes.update(hashes)
            total_measurements += count
        log = DataLog.merge(baseline_logs + case_logs)
        sim_total = float(
            sum(
                sum(phase.duration for name in CHIP_SEQUENCES[summary.chip_no]
                    for phase in standard_case(name, summary.chip_no).phases)
                for summary in summaries
            )
        )
        span.set("sim_advanced", sim_total)
    if span.duration > 0.0:
        tracer.gauge(
            "campaign.sim_seconds_per_wall_second",
            "simulated time advanced per wall-clock second",
        ).set(sim_total / span.duration)
        tracer.gauge(
            "campaign.fleet_measurements_per_second",
            "fleet campaign measurement throughput",
        ).set(total_measurements / span.duration)
    return FleetCampaignResult(
        log=log,
        chips={},
        fresh_delays=fresh_delays,
        state_hashes=state_hashes,
        summaries=summaries,
        fidelity=fidelity,
        total_measurements=total_measurements,
        shards=shards,
    )

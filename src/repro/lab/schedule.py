"""Accelerated test schedules: phases, cases and the paper's Table 1.

Case naming follows the paper:

* ``AS<temp><AC|DC><hours>`` — accelerated stress, e.g. ``AS110DC24`` is
  24 h of DC stress at 110 degC and nominal 1.2 V;
* ``R<temp>Z<hours>`` — passive recovery at 0 V, e.g. ``R20Z6``;
* ``AR<temp><Z|N><hours>`` — accelerated recovery, ``Z`` at 0 V, ``N`` at
  the negative rail (-0.3 V), e.g. ``AR110N6``.

:func:`parse_case_name` turns any such name into a :class:`TestCase`;
:data:`TABLE1_CASES` reproduces the paper's Table 1 schedule.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.fpga.ring_oscillator import StressMode
from repro.units import hours, minutes

#: Negative core voltage used by the paper's accelerated-recovery cases.
NEGATIVE_RAIL = -0.3

#: Nominal core voltage of the 40 nm parts.
NOMINAL_RAIL = 1.2

#: DC-stress sampling cadence — "RO is enabled only every 20 minutes for
#: data recording" (paper Sec. 4.4).
STRESS_SAMPLING_INTERVAL = minutes(20.0)

#: Recovery sampling cadence — "RO wakes up every 30 minutes" (Sec. 4.4).
RECOVERY_SAMPLING_INTERVAL = minutes(30.0)


class PhaseKind(enum.Enum):
    """Whether a phase wears the chip out or heals it."""

    STRESS = "stress"
    RECOVERY = "recovery"


@dataclass(frozen=True)
class TestPhase:
    """One leg of a test case.

    ``mode`` is only meaningful for stress phases; ``sampling_interval``
    sets how often the testbench wakes the RO for a readout.
    """

    # Not a pytest class despite the domain name.
    __test__ = False

    label: str
    kind: PhaseKind
    duration: float
    temperature_c: float
    supply_voltage: float
    mode: StressMode = StressMode.DC
    sampling_interval: float = STRESS_SAMPLING_INTERVAL

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ScheduleError(f"phase duration must be positive, got {self.duration}")
        if self.sampling_interval <= 0.0:
            raise ScheduleError("sampling interval must be positive")
        if self.kind is PhaseKind.STRESS and self.supply_voltage <= 0.0:
            raise ScheduleError("a stress phase needs a positive supply voltage")
        if self.kind is PhaseKind.RECOVERY and self.supply_voltage > 0.0:
            raise ScheduleError("a recovery phase needs a non-positive supply voltage")


@dataclass(frozen=True)
class TestCase:
    """A named sequence of phases applied to one chip."""

    # Not a pytest class despite the domain name.
    __test__ = False

    name: str
    chip_no: int
    phases: tuple[TestPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ScheduleError(f"case {self.name!r} has no phases")
        if self.chip_no <= 0:
            raise ScheduleError(f"chip_no must be positive, got {self.chip_no}")

    @property
    def total_duration(self) -> float:
        """Sum of all phase durations in seconds."""
        return sum(phase.duration for phase in self.phases)


_STRESS_RE = re.compile(r"^AS(\d+)(AC|DC)(\d+)$")
_RECOVERY_RE = re.compile(r"^(A?R)(\d+)(Z|N)(\d+)$")


def parse_case_name(name: str) -> TestPhase:
    """Translate a paper-style case name into its :class:`TestPhase`.

    Raises :class:`ScheduleError` for names outside the grammar.
    """
    match = _STRESS_RE.match(name)
    if match:
        temp, mode, dur = match.groups()
        return TestPhase(
            label=name,
            kind=PhaseKind.STRESS,
            duration=hours(float(dur)),
            temperature_c=float(temp),
            supply_voltage=NOMINAL_RAIL,
            mode=StressMode.AC if mode == "AC" else StressMode.DC,
            sampling_interval=STRESS_SAMPLING_INTERVAL,
        )
    match = _RECOVERY_RE.match(name)
    if match:
        prefix, temp, volt, dur = match.groups()
        if prefix == "R" and (volt == "N" or float(temp) > 25.0):
            raise ScheduleError(
                f"case {name!r}: plain recovery (R) means room temperature at "
                "0 V; use the AR prefix for accelerated conditions"
            )
        return TestPhase(
            label=name,
            kind=PhaseKind.RECOVERY,
            duration=hours(float(dur)),
            temperature_c=float(temp),
            supply_voltage=NEGATIVE_RAIL if volt == "N" else 0.0,
            sampling_interval=RECOVERY_SAMPLING_INTERVAL,
        )
    raise ScheduleError(f"unrecognised case name {name!r}")


def standard_case(name: str, chip_no: int) -> TestCase:
    """Single-phase :class:`TestCase` from a paper-style name."""
    return TestCase(name=name, chip_no=chip_no, phases=(parse_case_name(name),))


def baseline_phase() -> TestPhase:
    """The paper's burn-in: every chip is stressed 2 h at 20 degC, 1.2 V."""
    return TestPhase(
        label="BASELINE",
        kind=PhaseKind.STRESS,
        duration=hours(2.0),
        temperature_c=20.0,
        supply_voltage=NOMINAL_RAIL,
        mode=StressMode.DC,
        sampling_interval=minutes(20.0),
    )


#: The paper's Table 1 rows: (phase group, case name, chip number).
TABLE1_CASES: tuple[tuple[str, str, int], ...] = (
    ("Active (Stress)", "AS110AC24", 1),
    ("Active (Stress)", "AS110DC24", 2),
    ("Active (Stress)", "AS110DC24", 3),
    ("Active (Stress)", "AS100DC24", 4),
    ("Active (Stress)", "AS110DC24", 5),
    ("Active (Stress)", "AS110DC48", 5),
    ("Sleep (Recovery)", "R20Z6", 2),
    ("Sleep (Recovery)", "AR20N6", 3),
    ("Sleep (Recovery)", "AR110Z6", 4),
    ("Sleep (Recovery)", "AR110N6", 5),
    ("Sleep (Recovery)", "AR110N12", 5),
)

#: Execution order per chip — chip 5 runs its 48 h re-stress *after* the
#: first recovery case (the paper notes AR110N12 "is conducted after chip 5
#: is re-stressed for 48 hours").
CHIP_SEQUENCES: dict[int, tuple[str, ...]] = {
    1: ("AS110AC24",),
    2: ("AS110DC24", "R20Z6"),
    3: ("AS110DC24", "AR20N6"),
    4: ("AS100DC24", "AR110Z6"),
    5: ("AS110DC24", "AR110N6", "AS110DC48", "AR110N12"),
}

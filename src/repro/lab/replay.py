"""Replay: rebuild campaign analysis from an archived measurement log.

A campaign's CSV log is the durable artefact (the chips are transient
simulator state).  This module reconstructs a :class:`CampaignResult`-like
view from a log alone, deriving each chip's fresh delay from its first
recorded sample — which is why the campaign takes a time-zero reading of
every phase: the baseline burn-in's first sample *is* the fresh chip.
"""

from __future__ import annotations

from repro.errors import MeasurementError
from repro.lab.campaign import CampaignResult
from repro.lab.datalog import DataLog


def fresh_delays_from_log(log: DataLog) -> dict[str, float]:
    """Per-chip fresh delay inferred from the earliest record per chip.

    Raises :class:`MeasurementError` if any chip's earliest record is not
    a time-zero sample (phase_elapsed 0) — a log that starts mid-stress
    cannot anchor delay *changes*.
    """
    earliest: dict[str, object] = {}
    for record in log:
        current = earliest.get(record.chip_id)
        if current is None or record.timestamp < current.timestamp:
            earliest[record.chip_id] = record
    if not earliest:
        raise MeasurementError("the log holds no records")
    fresh: dict[str, float] = {}
    for chip_id, record in earliest.items():
        # Exact sentinel: time-zero samples are written as literal 0.0
        # and survive the CSV round trip bit-for-bit.
        if record.phase_elapsed != 0.0:  # repro: noqa[RPR003]
            raise MeasurementError(
                f"{chip_id}'s earliest record is mid-phase "
                f"(phase_elapsed={record.phase_elapsed}); cannot anchor a "
                "fresh delay"
            )
        fresh[chip_id] = record.delay
    return fresh


def result_from_log(log: DataLog) -> CampaignResult:
    """A :class:`CampaignResult` view over an archived log.

    ``chips`` is empty (the silicon is gone); every series accessor that
    only needs the log and the fresh anchors works as on a live result.
    """
    return CampaignResult(log=log, chips={}, fresh_delays=fresh_delays_from_log(log))


def result_from_csv(path) -> CampaignResult:
    """Load an archived campaign CSV and rebuild the analysis view."""
    return result_from_log(DataLog.read_csv(path))

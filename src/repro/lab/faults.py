"""Deterministic instrument-fault injection for the virtual lab bench.

Real benches are not perfect: thermal chambers drift past their control
band, supplies droop and their relays chatter, counters drop readouts or
get a bit stuck, and whole chips fall off the bench mid-campaign.  This
module models those failure modes as a *plan* — an explicit, seeded list
of :class:`FaultEvent` — rather than as live randomness, so a faulted
campaign is exactly as reproducible as a clean one: the same seed yields
the same faults at the same simulated times, and the campaign RNG streams
are never touched (a chip with no faults is bit-identical to a fault-free
run).

The taxonomy maps onto the existing error hierarchy:

* ``THERMAL_DRIFT`` / ``SUPPLY_DROOP`` silently perturb the delivered
  temperature/voltage over a window — degradation the chip physically
  experiences, visible only in the data;
* ``RELAY_CHATTER`` raises :class:`~repro.errors.InstrumentError` and
  ``DROPPED_READOUT`` raises :class:`~repro.errors.MeasurementError` at
  the next readout burst (one-shot, retryable);
* ``STUCK_BIT`` corrupts the next count; the bench's plausibility check
  or the counter's own range check
  (:class:`~repro.errors.CounterOverflowError`) surfaces it;
* ``CHIP_DROPOUT`` raises :class:`~repro.errors.ChipDropoutError` from
  its start time onward — permanent, never retried, quarantined by the
  campaign;
* ``TRAP_UPSET`` corrupts the chip's trap-occupancy state in place (a
  radiation-style state upset rather than a bench fault) — invisible to
  the instruments, caught only by the :mod:`repro.guard` physics
  contracts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ChipDropoutError, ConfigurationError
from repro.obs import get_tracer
from repro.units import hours, minutes


class FaultKind(enum.Enum):
    """The bench failure modes the virtual lab can inject."""

    #: Chamber wanders beyond its +/- control band for a window.
    THERMAL_DRIFT = "thermal-drift"
    #: Supply rail sags below the setpoint for a window (stress rails only).
    SUPPLY_DROOP = "supply-droop"
    #: Output relay bounces during a readout burst (one-shot, detected).
    RELAY_CHATTER = "relay-chatter"
    #: Counter returns nothing for one readout burst (one-shot, detected).
    DROPPED_READOUT = "dropped-readout"
    #: A counter bit reads stuck-high for one burst (one-shot, corrupting).
    STUCK_BIT = "stuck-bit"
    #: The chip stops responding permanently from ``start`` onward.
    CHIP_DROPOUT = "chip-dropout"
    #: Trap occupancy state corrupted in place (one-shot, silent).
    TRAP_UPSET = "trap-upset"


#: Kinds that fire exactly once, at the first readout at/after ``start``.
ONE_SHOT_KINDS = frozenset(
    {FaultKind.RELAY_CHATTER, FaultKind.DROPPED_READOUT, FaultKind.STUCK_BIT}
)

#: Kinds that perturb delivered values over ``[start, start + duration)``.
WINDOW_KINDS = frozenset({FaultKind.THERMAL_DRIFT, FaultKind.SUPPLY_DROOP})

#: Kinds that corrupt device state (not instruments), once, at/after ``start``.
STATE_KINDS = frozenset({FaultKind.TRAP_UPSET})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled bench fault.

    ``start`` is simulated seconds on the victim chip's own clock
    (``FpgaChip.elapsed``).  ``duration`` only applies to window kinds;
    ``magnitude`` is degrees Celsius for drift, volts for droop, the
    stuck bit index for ``STUCK_BIT``, and the bogus occupancy value
    (possibly NaN) written into the trap state for ``TRAP_UPSET``.
    """

    kind: FaultKind
    chip_id: str
    start: float
    duration: float = 0.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ConfigurationError(f"fault start must be non-negative, got {self.start}")
        if self.duration < 0.0:
            raise ConfigurationError(
                f"fault duration must be non-negative, got {self.duration}"
            )
        if self.kind in WINDOW_KINDS and self.duration <= 0.0:
            raise ConfigurationError(f"{self.kind.value} faults need a positive duration")
        if self.kind is FaultKind.STUCK_BIT and not float(self.magnitude).is_integer():
            raise ConfigurationError("stuck-bit magnitude must be an integer bit index")

    @property
    def end(self) -> float:
        """End of the fault window (equals ``start`` for one-shot kinds)."""
        return self.start + self.duration


class FaultPlan:
    """An immutable, ordered set of fault events for a campaign.

    Build one explicitly from events, or draw one with :meth:`generate`
    — both are fully deterministic.  The plan is shared read-only across
    worker threads; per-chip mutable state lives in :class:`FaultInjector`.
    """

    def __init__(self, events: tuple[FaultEvent, ...] | list[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.chip_id, e.start, e.kind.value))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def for_chip(self, chip_id: str) -> tuple[FaultEvent, ...]:
        """Events targeting one chip, in start-time order."""
        return tuple(e for e in self.events if e.chip_id == chip_id)

    @classmethod
    def generate(
        cls,
        seed: int,
        chip_ids: list[str] | tuple[str, ...],
        horizon: float,
        rate_per_day: float = 1.0,
        dropout_probability: float = 0.0,
        upset_probability: float = 0.0,
    ) -> "FaultPlan":
        """Draw a random plan from its own RNG (never the campaign's).

        ``rate_per_day`` is the Poisson mean of instrument faults per chip
        per simulated day over ``horizon`` seconds;
        ``dropout_probability`` is the per-chip chance of one permanent
        dropout at a uniform time; ``upset_probability`` is the per-chip
        chance of one trap-state upset at a uniform time (half NaN, half
        an out-of-domain occupancy).  Same arguments, same plan — and the
        upset draws only happen when ``upset_probability`` is non-zero,
        so plans generated before the knob existed are unchanged.
        """
        if horizon <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if rate_per_day < 0.0:
            raise ConfigurationError("rate_per_day must be non-negative")
        if not 0.0 <= dropout_probability <= 1.0:
            raise ConfigurationError("dropout_probability must be within [0, 1]")
        if not 0.0 <= upset_probability <= 1.0:
            raise ConfigurationError("upset_probability must be within [0, 1]")
        rng = np.random.default_rng(seed)
        transient_kinds = (
            FaultKind.THERMAL_DRIFT,
            FaultKind.SUPPLY_DROOP,
            FaultKind.RELAY_CHATTER,
            FaultKind.DROPPED_READOUT,
            FaultKind.STUCK_BIT,
        )
        events: list[FaultEvent] = []
        for chip_id in chip_ids:
            n_events = int(rng.poisson(rate_per_day * horizon / hours(24.0)))
            for _ in range(n_events):
                kind = transient_kinds[int(rng.integers(len(transient_kinds)))]
                start = float(rng.uniform(0.0, horizon))
                duration, magnitude = 0.0, 0.0
                if kind is FaultKind.THERMAL_DRIFT:
                    duration = float(rng.uniform(minutes(30.0), hours(2.0)))
                    magnitude = float(rng.uniform(0.5, 3.0))
                elif kind is FaultKind.SUPPLY_DROOP:
                    duration = float(rng.uniform(minutes(1.0), minutes(30.0)))
                    magnitude = float(rng.uniform(0.02, 0.15))
                elif kind is FaultKind.STUCK_BIT:
                    magnitude = float(rng.integers(8, 15))
                events.append(
                    FaultEvent(
                        kind=kind,
                        chip_id=chip_id,
                        start=start,
                        duration=duration,
                        magnitude=magnitude,
                    )
                )
            if float(rng.random()) < dropout_probability:
                events.append(
                    FaultEvent(
                        kind=FaultKind.CHIP_DROPOUT,
                        chip_id=chip_id,
                        start=float(rng.uniform(0.0, horizon)),
                    )
                )
            # Gated so a zero probability consumes no RNG draws: plans
            # generated before this knob existed stay byte-identical.
            if upset_probability > 0.0 and float(rng.random()) < upset_probability:
                magnitude = (
                    float("nan")
                    if float(rng.random()) < 0.5
                    else float(rng.uniform(1.5, 4.0))
                )
                events.append(
                    FaultEvent(
                        kind=FaultKind.TRAP_UPSET,
                        chip_id=chip_id,
                        start=float(rng.uniform(0.0, horizon)),
                        magnitude=magnitude,
                    )
                )
        return cls(events)


class FaultInjector:
    """One chip's live view of a :class:`FaultPlan`.

    Tracks which one-shot events have fired (each fires at the first
    readout at/after its start, then is consumed, so a retry re-reads
    cleanly) and answers window queries against the chip's simulated
    clock.  ``start_time`` lets a resumed campaign mark everything the
    chip already lived through as spent.
    """

    def __init__(
        self, plan: FaultPlan, chip_id: str, start_time: float = 0.0, tracer=None
    ) -> None:
        self.chip_id = chip_id
        events = plan.for_chip(chip_id)
        self._windows = tuple(e for e in events if e.kind in WINDOW_KINDS)
        self._pending = [
            e for e in events if e.kind in ONE_SHOT_KINDS and e.start >= start_time
        ]
        self._pending_upsets = [
            e for e in events if e.kind in STATE_KINDS and e.start >= start_time
        ]
        dropouts = [e for e in events if e.kind is FaultKind.CHIP_DROPOUT]
        self._dropout_at = min((e.start for e in dropouts), default=None)
        self.fired: list[FaultEvent] = []
        self._seen_windows: set[FaultEvent] = set()
        tracer = tracer if tracer is not None else get_tracer()
        self._injected = tracer.counter(
            "lab.faults.injected", "bench faults that took effect during campaigns"
        )

    def _record(self, event: FaultEvent) -> None:
        self.fired.append(event)
        self._injected.inc()

    def check_dropout(self, now: float) -> None:
        """Raise :class:`ChipDropoutError` once the dropout time passes."""
        if self._dropout_at is not None and now >= self._dropout_at:
            raise ChipDropoutError(
                f"{self.chip_id} stopped responding at t={self._dropout_at:.1f} s "
                "(simulated bench dropout)"
            )

    def _active_windows(self, now: float, kind: FaultKind) -> list[FaultEvent]:
        active = [
            e for e in self._windows if e.kind is kind and e.start <= now < e.end
        ]
        for event in active:
            if event not in self._seen_windows:
                self._seen_windows.add(event)
                self._record(event)
        return active

    def temperature_offset(self, now: float) -> float:
        """Degrees of chamber drift currently delivered on top of the band."""
        return sum(e.magnitude for e in self._active_windows(now, FaultKind.THERMAL_DRIFT))

    def voltage_droop(self, now: float) -> float:
        """Volts of rail sag currently delivered (non-negative)."""
        return sum(e.magnitude for e in self._active_windows(now, FaultKind.SUPPLY_DROOP))

    def pop_readout_fault(self, now: float) -> FaultEvent | None:
        """Consume the earliest pending one-shot fault due at/before ``now``."""
        for index, event in enumerate(self._pending):
            if event.start <= now:
                self._record(event)
                del self._pending[index]
                return event
        return None

    def pop_upset(self, now: float) -> FaultEvent | None:
        """Consume the earliest pending trap-state upset due at/before ``now``."""
        for index, event in enumerate(self._pending_upsets):
            if event.start <= now:
                self._record(event)
                del self._pending_upsets[index]
                return event
        return None

"""Virtual reference clock generator for the readout counter."""

from __future__ import annotations

import numpy as np

from repro.errors import InstrumentError


class ClockGenerator:
    """External clock source providing the counter reference ``fref``.

    Parameters
    ----------
    frequency:
        Programmed output frequency in Hz (paper uses 500 Hz).
    accuracy_ppm:
        Frequency accuracy in parts per million.
    """

    def __init__(self, frequency: float = 500.0, accuracy_ppm: float = 5.0) -> None:
        if frequency <= 0.0:
            raise InstrumentError("clock frequency must be positive")
        if accuracy_ppm < 0.0:
            raise InstrumentError("accuracy must be non-negative")
        self.frequency = frequency
        self.accuracy_ppm = accuracy_ppm

    def actual_frequency(self, rng: np.random.Generator | int | None = None) -> float:
        """One realisation of the delivered reference frequency (Hz)."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        error = rng.uniform(-self.accuracy_ppm, self.accuracy_ppm) * 1e-6
        return self.frequency * (1.0 + error)

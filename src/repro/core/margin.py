"""Margin budgeting: from aging distributions to guardbands and yield.

The paper's economic argument lives here: variations "require increased
design margins that lead to lower performance or higher power and cost".
This module turns aging numbers into the designer-facing quantities —

* :func:`frequency_guardband` — the fmax derate covering a population
  quantile of delay shift;
* :func:`relaxed_guardband` — the same after a healing schedule, i.e.
  how much clock the technique buys back;
* :func:`parametric_yield` — fraction of devices meeting a frequency bin
  for a chosen guardband;
* :class:`MarginBudget` — a complete budget with its report table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.errors import ConfigurationError


def _check_shifts(relative_shifts) -> np.ndarray:
    shifts = np.asarray(relative_shifts, dtype=float)
    if shifts.ndim != 1 or shifts.size == 0:
        raise ConfigurationError("relative_shifts must be a non-empty 1-D array")
    if np.any(shifts < 0.0):
        raise ConfigurationError("relative delay shifts must be non-negative")
    return shifts


def frequency_guardband(relative_shifts, coverage: float = 0.99) -> float:
    """fmax derate covering ``coverage`` of the population.

    ``relative_shifts`` are per-device dTd / Td0 values at end of life.
    A device with relative shift s runs at ``f0 / (1 + s)``; the derate is
    ``1 - 1/(1 + s_q)`` at the coverage quantile — the fraction of nominal
    frequency the datasheet must give up.
    """
    if not 0.0 < coverage < 1.0:
        raise ConfigurationError("coverage must be in (0, 1)")
    shifts = _check_shifts(relative_shifts)
    worst = float(np.quantile(shifts, coverage))
    return 1.0 - 1.0 / (1.0 + worst)


def relaxed_guardband(
    unhealed_shifts, healed_shifts, coverage: float = 0.99
) -> tuple[float, float, float]:
    """(guardband without healing, with healing, relative reduction)."""
    before = frequency_guardband(unhealed_shifts, coverage)
    after = frequency_guardband(healed_shifts, coverage)
    if before <= 0.0:
        raise ConfigurationError("the unhealed population shows no aging to relax")
    return before, after, 1.0 - after / before


def parametric_yield(relative_shifts, guardband: float) -> float:
    """Fraction of devices still meeting spec at end of life.

    A device yields if its aged frequency ``f0 / (1 + s)`` stays at or
    above the shipped bin ``f0 * (1 - guardband)``.
    """
    if not 0.0 <= guardband < 1.0:
        raise ConfigurationError("guardband must be in [0, 1)")
    shifts = _check_shifts(relative_shifts)
    limit = 1.0 / (1.0 - guardband) - 1.0
    return float(np.mean(shifts <= limit))


@dataclass(frozen=True)
class MarginBudget:
    """A complete aging-margin budget for one design point."""

    coverage: float
    guardband_unhealed: float
    guardband_healed: float
    yield_unhealed: float
    yield_healed: float

    @property
    def guardband_reduction(self) -> float:
        """Relative shrink of the guardband thanks to healing."""
        if self.guardband_unhealed == 0.0:
            return 0.0
        return 1.0 - self.guardband_healed / self.guardband_unhealed

    def table(self) -> Table:
        """Render the budget."""
        table = Table(
            f"Aging margin budget (coverage p{self.coverage * 100:.0f})",
            ["quantity", "without healing", "with healing"],
            fmt="{:.4f}",
        )
        table.add_row("fmax guardband", self.guardband_unhealed, self.guardband_healed)
        table.add_row(
            "yield at the healed guardband", self.yield_unhealed, self.yield_healed
        )
        return table


def build_margin_budget(
    unhealed_shifts, healed_shifts, coverage: float = 0.99
) -> MarginBudget:
    """Assemble a :class:`MarginBudget` from two shift populations.

    Yields are evaluated at the *healed* guardband: shipping the tighter
    bin, the unhealed population loses parts that the healed one keeps —
    the cost of not healing in yield terms.
    """
    before, after, __ = relaxed_guardband(unhealed_shifts, healed_shifts, coverage)
    return MarginBudget(
        coverage=coverage,
        guardband_unhealed=before,
        guardband_healed=after,
        yield_unhealed=parametric_yield(unhealed_shifts, after),
        yield_healed=parametric_yield(healed_shifts, after),
    )

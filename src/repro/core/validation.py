"""Model-vs-measurement validation, the paper's Sec. 5 methodology.

The paper overlays its fitted first-order model on every measured curve
(Figs. 5-8) and argues the match visually; here the comparison is
quantified: RMSE, range-normalised RMSE, worst-point error and R^2, with a
single pass/fail against an NRMSE threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Range-normalised RMSE below which we call a model curve a match.
DEFAULT_NRMSE_THRESHOLD = 0.15


@dataclass(frozen=True)
class ValidationReport:
    """Agreement between a model curve and a measured series."""

    rmse: float
    nrmse: float
    max_abs_error: float
    r_squared: float
    n_points: int
    threshold: float

    @property
    def passed(self) -> bool:
        """True when the normalised RMSE is within the threshold."""
        return self.nrmse <= self.threshold

    def describe(self) -> str:
        """One-line human-readable summary."""
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"{verdict}: nrmse={self.nrmse:.3f} (<= {self.threshold}), "
            f"rmse={self.rmse:.3e}, max|err|={self.max_abs_error:.3e}, "
            f"R^2={self.r_squared:.3f}, n={self.n_points}"
        )


def validate_model_against_series(
    measured, predicted, threshold: float = DEFAULT_NRMSE_THRESHOLD
) -> ValidationReport:
    """Compare a model prediction against a measured series point-wise."""
    measured = np.asarray(measured, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if measured.shape != predicted.shape or measured.ndim != 1:
        raise ConfigurationError("measured and predicted must be 1-D arrays of equal length")
    if measured.size < 2:
        raise ConfigurationError("validation needs at least two points")
    if threshold <= 0.0:
        raise ConfigurationError("threshold must be positive")
    residual = measured - predicted
    rmse = float(np.sqrt(np.mean(residual**2)))
    value_range = float(measured.max() - measured.min())
    nrmse = rmse / value_range if value_range > 0.0 else float("inf")
    ss_tot = float(np.sum((measured - measured.mean()) ** 2))
    r_squared = 1.0 - float(np.sum(residual**2)) / ss_tot if ss_tot > 0.0 else float("nan")
    return ValidationReport(
        rmse=rmse,
        nrmse=nrmse,
        max_abs_error=float(np.max(np.abs(residual))),
        r_squared=r_squared,
        n_points=measured.size,
        threshold=threshold,
    )

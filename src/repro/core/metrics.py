"""Self-healing metrics: recovered delay, margin relaxed, lifetime extension.

Definitions (see DESIGN.md Sec. 3 for the mapping to the paper's wording):

* **recovered delay** ``RD(t2) = dTd(t1) - dTd(t1 + t2)`` — paper Eq. (16);
* **recovery fraction / margin-relaxed parameter** ``RD_end / dTd(t1)`` —
  the paper's Table 4/5 "design margin relaxed parameter", i.e. how much
  of the accumulated shift a sleep phase undid (72.4 % for AR110N6);
* **design margin relaxed (envelope)** ``1 - peak_with_healing /
  peak_without`` — the Fig. 9 view: how much guardband a periodic
  schedule saves against unmitigated aging over the same active time;
* **lifetime extension** — ratio of times-to-budget with and without
  healing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _as_series(times, values) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape or times.ndim != 1:
        raise ConfigurationError("times and values must be 1-D arrays of equal length")
    if times.size < 2:
        raise ConfigurationError("a recovery series needs at least two samples")
    if np.any(np.diff(times) < 0.0):
        raise ConfigurationError("times must be non-decreasing")
    return times, values


def recovered_delay(times, delay_changes) -> np.ndarray:
    """RD(t) for a recovery series anchored at the end of stress.

    ``delay_changes[0]`` must be the shift at the end of the stress phase
    (the series' time 0); positive RD means the chip got faster again.
    """
    __, values = _as_series(times, delay_changes)
    return values[0] - values


def recovery_fraction(times, delay_changes) -> float:
    """Fraction of the accumulated shift undone by the end of the series."""
    __, values = _as_series(times, delay_changes)
    if values[0] <= 0.0:
        raise ConfigurationError(
            "the series must start from a positive delay shift (a stressed chip)"
        )
    return float((values[0] - values[-1]) / values[0])


def margin_relaxed_parameter(times, delay_changes) -> float:
    """The paper's Table 4/5 design-margin-relaxed parameter (percent).

    Identical to :func:`recovery_fraction` expressed in percent — the
    paper defines it as "how much the chip recovered from the original
    margin".
    """
    return 100.0 * recovery_fraction(times, delay_changes)


def design_margin_relaxed(peak_with_healing: float, peak_without_healing: float) -> float:
    """Envelope view (paper Fig. 9): guardband saved by periodic healing.

    Both arguments are worst-case delay shifts accumulated over the same
    total *active* time, with and without the healing schedule.
    """
    if peak_without_healing <= 0.0:
        raise ConfigurationError("the unhealed peak must be positive")
    if peak_with_healing < 0.0:
        raise ConfigurationError("the healed peak cannot be negative")
    return 1.0 - peak_with_healing / peak_without_healing


def time_to_budget(times, delay_changes, budget: float) -> float:
    """First time the shift crosses ``budget`` (linear interpolation).

    Returns ``inf`` if the series never reaches the budget — the caller
    decides whether to extrapolate.
    """
    times, values = _as_series(times, delay_changes)
    if budget <= 0.0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    above = np.nonzero(values >= budget)[0]
    if above.size == 0:
        return float("inf")
    i = int(above[0])
    if i == 0:
        return float(times[0])
    t0, t1 = times[i - 1], times[i]
    v0, v1 = values[i - 1], values[i]
    if v1 == v0:
        return float(t1)
    return float(t0 + (budget - v0) * (t1 - t0) / (v1 - v0))


def lifetime_extension(
    baseline_times,
    baseline_shifts,
    healed_times,
    healed_shifts,
    budget: float,
) -> float:
    """Ratio of healed to baseline time-to-budget.

    Returns ``inf`` when healing keeps the shift below the budget for the
    whole simulated horizon while the baseline crosses it.
    """
    t_base = time_to_budget(baseline_times, baseline_shifts, budget)
    t_heal = time_to_budget(healed_times, healed_shifts, budget)
    if not np.isfinite(t_base):
        raise ConfigurationError(
            "the baseline never reaches the budget; extend the horizon or "
            "lower the budget"
        )
    if t_base <= 0.0:
        raise ConfigurationError("baseline crosses the budget at time zero")
    return float(t_heal / t_base)

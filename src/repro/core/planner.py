"""Circadian schedule planning and recovery-knob optimisation.

The paper closes by proposing a "virtual circadian rhythm" — periodic,
known-in-advance deep rejuvenation (Sec. 7).  The planner implements it:
given recovery knobs and a cycle period it builds the schedule, simulates
the wearout/recovery envelope on a chip (the Fig. 9 picture), quantifies
the design margin relaxed against unmitigated aging over the same active
time, and searches the alpha knob for the cheapest schedule meeting a
margin target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.metrics import design_margin_relaxed
from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
from repro.core.rejuvenator import Rejuvenator, Trajectory
from repro.errors import ConfigurationError
from repro.fpga.chip import CycleSegment
from repro.fpga.ring_oscillator import StressMode
from repro.units import SECONDS_PER_HOUR, hours


@dataclass(frozen=True)
class PlannedSchedule:
    """A concrete circadian plan.

    ``n_cycles`` full cycles of ``active_seconds`` work followed by
    ``sleep_seconds`` rejuvenation deliver ``total_active_time`` seconds
    of work in ``wall_clock_time`` seconds.
    """

    knobs: RecoveryKnobs
    period: float
    n_cycles: int
    active_seconds: float
    sleep_seconds: float

    @property
    def total_active_time(self) -> float:
        """Work delivered by the plan, in seconds."""
        return self.n_cycles * self.active_seconds

    @property
    def wall_clock_time(self) -> float:
        """Total wall-clock span of the plan, in seconds."""
        return self.n_cycles * self.period

    @property
    def throughput_overhead(self) -> float:
        """Extra wall-clock per unit of work: ``sleep / active`` = 1/alpha."""
        return self.sleep_seconds / self.active_seconds


@dataclass(frozen=True)
class EnvelopeComparison:
    """Healed vs unhealed aging over the same delivered work."""

    healed: Trajectory
    baseline: Trajectory
    margin_relaxed: float
    end_recovery_fraction: float


class CircadianPlanner:
    """Plans and evaluates periodic accelerated-recovery schedules.

    Parameters
    ----------
    knobs:
        Sleep-phase knobs (alpha, voltage, temperature).
    operating:
        Active-phase conditions.
    period:
        Cycle length in seconds (active + sleep).
    stress_mode:
        How the design stresses while active (DC worst case by default to
        match the paper's experiments).
    """

    def __init__(
        self,
        knobs: RecoveryKnobs,
        operating: OperatingPoint | None = None,
        period: float = hours(30.0),
        stress_mode: StressMode = StressMode.DC,
    ) -> None:
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.knobs = knobs
        self.operating = operating or OperatingPoint()
        self.period = period
        self.stress_mode = stress_mode

    def plan(self, total_active_time: float) -> PlannedSchedule:
        """Schedule enough cycles to deliver ``total_active_time`` of work."""
        if total_active_time <= 0.0:
            raise ConfigurationError("total_active_time must be positive")
        active, sleep = self.knobs.split_cycle(self.period)
        n_cycles = int(np.ceil(total_active_time / active))
        return PlannedSchedule(
            knobs=self.knobs,
            period=self.period,
            n_cycles=n_cycles,
            active_seconds=active,
            sleep_seconds=sleep,
        )

    def simulate(self, chip, total_active_time: float, max_segment: float = 1800.0) -> Trajectory:
        """Run the plan on a chip and return the Fig. 9 trajectory."""
        rejuvenator = Rejuvenator(
            chip, self.operating, stress_mode=self.stress_mode, max_segment=max_segment
        )
        policy = ProactivePolicy(self.knobs, self.period)
        return rejuvenator.run(policy, total_active_time)

    def fast_forward(self, chip, n_cycles: int) -> float:
        """Advance ``chip`` through ``n_cycles`` planned cycles, O(1) in count.

        Same piecewise-constant physics as :meth:`simulate` — one active
        leg at the operating point, one sleep leg at the knob conditions
        — but routed through the chip's closed-form
        :meth:`~repro.fpga.chip.FpgaChip.apply_cycles`, so the cost does
        not grow with ``n_cycles``.  No trajectory samples are recorded;
        use this to project far beyond a detailed simulation window.
        Returns the end-of-sleep (trough) delay shift.
        """
        if n_cycles <= 0:
            raise ConfigurationError(f"n_cycles must be positive, got {n_cycles}")
        active, sleep = self.knobs.split_cycle(self.period)
        segments = (
            CycleSegment.active(
                active,
                self.operating.temperature,
                self.operating.supply_voltage,
                mode=self.stress_mode,
            ),
            CycleSegment.sleep(
                sleep, self.knobs.sleep_temperature, self.knobs.sleep_voltage
            ),
        )
        chip.apply_cycles(segments, n_cycles)
        return chip.delta_path_delay()

    def compare_against_baseline(
        self, chip, total_active_time: float, max_segment: float = 1800.0
    ) -> EnvelopeComparison:
        """Healed vs never-healed aging for the same delivered work.

        Uses snapshot/restore so both runs start from the chip's current
        state; the margin-relaxed number compares the healed run's *peak*
        shift against the baseline's end-of-run shift (both are what a
        designer must budget for).
        """
        state = chip.snapshot()
        healed = self.simulate(chip, total_active_time, max_segment)
        chip.restore(state)
        rejuvenator = Rejuvenator(
            chip, self.operating, stress_mode=self.stress_mode, max_segment=max_segment
        )
        baseline = rejuvenator.run(
            NoRecoveryPolicy(segment=max_segment), total_active_time
        )
        chip.restore(state)
        margin = design_margin_relaxed(healed.peak_shift, baseline.final_shift)
        peaks = healed.cycle_peaks()
        troughs = healed.cycle_troughs()
        if peaks.size and troughs.size:
            last = min(peaks.size, troughs.size) - 1
            end_fraction = float(1.0 - troughs[last] / peaks[last]) if peaks[last] > 0 else 0.0
        else:
            end_fraction = 0.0
        return EnvelopeComparison(
            healed=healed,
            baseline=baseline,
            margin_relaxed=margin,
            end_recovery_fraction=end_fraction,
        )

    def optimise_alpha(
        self,
        chip,
        total_active_time: float,
        margin_target: float,
        alphas=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0),
        max_segment: float = SECONDS_PER_HOUR,
    ) -> tuple[float, dict[float, float]]:
        """Largest alpha (least sleep) whose margin relaxed meets the target.

        Returns the chosen alpha and the full alpha -> margin map; raises
        :class:`ConfigurationError` when no candidate meets the target.
        """
        if not 0.0 < margin_target < 1.0:
            raise ConfigurationError("margin_target must be in (0, 1)")
        results: dict[float, float] = {}
        for alpha in sorted(alphas, reverse=True):
            knobs = RecoveryKnobs(
                alpha=alpha,
                sleep_voltage=self.knobs.sleep_voltage,
                sleep_temperature_c=self.knobs.sleep_temperature_c,
            )
            planner = CircadianPlanner(knobs, self.operating, self.period, self.stress_mode)
            comparison = planner.compare_against_baseline(
                chip, total_active_time, max_segment
            )
            results[alpha] = comparison.margin_relaxed
            if comparison.margin_relaxed >= margin_target:
                return alpha, results
        raise ConfigurationError(
            f"no alpha in {sorted(alphas)} reaches margin target {margin_target:.0%}; "
            f"best was {max(results.values()):.0%}"
        )

"""Accelerated self-healing core — the paper's primary contribution.

This package turns the raw substrates (BTI physics, virtual FPGA, lab)
into the techniques the paper proposes:

* :mod:`repro.core.knobs` — the three recovery knobs: active:sleep ratio
  alpha, sleep (negative) voltage, sleep temperature;
* :mod:`repro.core.policies` — proactive, reactive, passive and
  no-recovery scheduling policies (paper Sec. 2.2);
* :mod:`repro.core.rejuvenator` — drives a chip through operation + sleep
  according to a policy, recording the wearout/recovery trajectory;
* :mod:`repro.core.metrics` — recovered delay, recovery fraction, the
  design-margin-relaxed parameter and lifetime extension;
* :mod:`repro.core.fitting` — extraction of the paper's first-order model
  parameters from measured data (paper Table 3);
* :mod:`repro.core.validation` — model-vs-measurement comparison;
* :mod:`repro.core.planner` — circadian schedule planning and knob
  optimisation (paper Fig. 9 and future-work Sec. 7);
* :mod:`repro.core.lifetime` — lifetime projection under policies.
"""

from repro.core.adaptation import AdaptiveClockController, ClockTrace
from repro.core.fitting import (
    FitReport,
    fit_physics_scaling,
    fit_recovery_parameters,
    fit_stress_parameters,
)
from repro.core.knobs import RecoveryKnobs, OperatingPoint
from repro.core.lifetime import LifetimeReport, project_lifetime
from repro.core.margin import MarginBudget, build_margin_budget, frequency_guardband, parametric_yield
from repro.core.negative_rail import (
    ChargePumpGenerator,
    GidlModel,
    recommend_voltage,
    sweep_sleep_voltage,
)
from repro.core.metrics import (
    design_margin_relaxed,
    lifetime_extension,
    margin_relaxed_parameter,
    recovered_delay,
    recovery_fraction,
)
from repro.core.planner import CircadianPlanner, PlannedSchedule
from repro.core.policies import (
    NoRecoveryPolicy,
    PassiveSleepPolicy,
    ProactivePolicy,
    ReactivePolicy,
    RecoveryAction,
)
from repro.core.rejuvenator import Rejuvenator, Trajectory
from repro.core.gnomo import GnomoResult, gnomo_speedup, run_gnomo
from repro.core.validation import ValidationReport, validate_model_against_series
from repro.core.virtual_rhythm import RhythmResult, VirtualCircadianRhythm

__all__ = [
    "AdaptiveClockController",
    "CircadianPlanner",
    "ClockTrace",
    "FitReport",
    "LifetimeReport",
    "MarginBudget",
    "ChargePumpGenerator",
    "GidlModel",
    "NoRecoveryPolicy",
    "OperatingPoint",
    "PassiveSleepPolicy",
    "PlannedSchedule",
    "ProactivePolicy",
    "ReactivePolicy",
    "RecoveryAction",
    "RecoveryKnobs",
    "Rejuvenator",
    "Trajectory",
    "ValidationReport",
    "VirtualCircadianRhythm",
    "GnomoResult",
    "RhythmResult",
    "gnomo_speedup",
    "run_gnomo",
    "design_margin_relaxed",
    "fit_physics_scaling",
    "fit_recovery_parameters",
    "fit_stress_parameters",
    "lifetime_extension",
    "build_margin_budget",
    "frequency_guardband",
    "parametric_yield",
    "recommend_voltage",
    "sweep_sleep_voltage",
    "margin_relaxed_parameter",
    "project_lifetime",
    "recovered_delay",
    "recovery_fraction",
    "validate_model_against_series",
]

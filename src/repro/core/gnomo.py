"""GNOMO baseline: Greater-than-NOMinal Vdd operation (paper ref. [12]).

The mitigation the paper positions itself against (Gupta & Sapatnekar,
ASP-DAC 2012): run the circuit at a supply *above* nominal so the same
work finishes sooner, then power-gate for the saved time.  Stress time
shrinks (and the idle gap passively recovers), at a dynamic-power premium
of roughly ``(Vg/Vnom)^2 x speedup`` during the active burst.

The paper's critique: GNOMO (like all in-operation mitigations) trades
power or performance to *slow* wearout, while accelerated self-healing
actively *reverses* it during time the system would have slept anyway.
:func:`run_gnomo` simulates the scheme on a virtual chip so the benchmark
can make that comparison quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fpga.chip import FpgaChip
from repro.fpga.ring_oscillator import StressMode
from repro.units import SECONDS_PER_HOUR, celsius


@dataclass(frozen=True)
class GnomoResult:
    """Aging and energy outcome of a GNOMO run.

    ``delay_shift`` is the accumulated dTd after delivering the work;
    ``energy_factor`` is dynamic energy relative to nominal-voltage
    operation of the same work (>= 1: GNOMO always pays in power).
    """

    delay_shift: float
    energy_factor: float
    stress_time: float
    idle_time: float


def gnomo_speedup(chip: FpgaChip, boosted_voltage: float) -> float:
    """Circuit speedup at the boosted supply (alpha-power-free estimate).

    Uses the first-order delay relation ``td ~ Vdd / (Vdd - Vth)``: the
    ratio of nominal to boosted delay.  Conservative (real silicon gains
    slightly more from velocity saturation).
    """
    tech = chip.tech
    vth = max(tech.vth0_pmos, tech.vth0_nmos)
    nominal = tech.vdd_nominal / (tech.vdd_nominal - vth)
    boosted = boosted_voltage / (boosted_voltage - vth)
    return nominal / boosted


def run_gnomo(
    chip: FpgaChip,
    work_time_nominal: float,
    boosted_voltage: float,
    temperature_c: float = 110.0,
    mode: StressMode = StressMode.DC,
    cycle: float = SECONDS_PER_HOUR,
) -> GnomoResult:
    """Deliver ``work_time_nominal`` seconds of nominal-speed work via GNOMO.

    Work is chopped into ``cycle``-second slices: each slice runs boosted
    for ``cycle / speedup`` seconds then power-gates (0 V, passive
    recovery) for the remainder, preserving slice-level throughput exactly
    as ref. [12] prescribes.
    """
    if work_time_nominal <= 0.0:
        raise ConfigurationError("work_time_nominal must be positive")
    if boosted_voltage <= chip.tech.vdd_nominal:
        raise ConfigurationError(
            "GNOMO needs a supply above nominal "
            f"({boosted_voltage} <= {chip.tech.vdd_nominal})"
        )
    if cycle <= 0.0:
        raise ConfigurationError("cycle must be positive")
    speedup = gnomo_speedup(chip, boosted_voltage)
    temperature = celsius(temperature_c)
    remaining = work_time_nominal
    stress_time = 0.0
    idle_time = 0.0
    while remaining > 1e-9:
        slice_nominal = min(cycle, remaining)
        active = slice_nominal / speedup
        idle = slice_nominal - active
        chip.apply_stress(
            active, temperature=temperature, supply_voltage=boosted_voltage, mode=mode
        )
        if idle > 0.0:
            chip.apply_recovery(idle, temperature=temperature, supply_voltage=0.0)
        stress_time += active
        idle_time += idle
        remaining -= slice_nominal
    # Dynamic energy ~ C V^2 per operation; same operation count, higher V.
    energy_factor = (boosted_voltage / chip.tech.vdd_nominal) ** 2
    return GnomoResult(
        delay_shift=chip.delta_path_delay(),
        energy_factor=energy_factor,
        stress_time=stress_time,
        idle_time=idle_time,
    )

"""Adaptation baseline: track aging and slow the clock (paper Secs. 1-2).

The mitigation philosophy the paper argues is insufficient: "accept the
variations, track and monitor them, then dynamically adapt".  An adaptive
system keeps *working* as it ages — it re-times its clock to the measured
critical path — but its delivered performance decays with the aging it
never repairs: "the system might function correctly with adaptation, but
will still become sluggish".

:class:`AdaptiveClockController` implements the scheme: periodic delay
measurements set the clock period to the aged path plus a safety margin.
The benchmark compares delivered clock frequency over life against a
self-healing schedule at equal delivered work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClockTrace:
    """Delivered clock frequency over a run.

    ``times`` are cumulative active seconds; ``frequencies`` the clock the
    controller could safely ship at each point.
    """

    times: np.ndarray
    frequencies: np.ndarray

    @property
    def final_frequency(self) -> float:
        """Clock at end of life."""
        return float(self.frequencies[-1])

    @property
    def fresh_frequency(self) -> float:
        """Clock at time zero."""
        return float(self.frequencies[0])

    @property
    def performance_loss(self) -> float:
        """Fractional clock lost to aging by end of life."""
        return 1.0 - self.final_frequency / self.fresh_frequency

    def mean_frequency(self) -> float:
        """Work-weighted average delivered clock."""
        if self.times[-1] == self.times[0]:
            return self.fresh_frequency
        return float(
            np.trapezoid(self.frequencies, self.times) / (self.times[-1] - self.times[0])
        )


class AdaptiveClockController:
    """Re-times the clock to the measured critical path.

    Parameters
    ----------
    safety_margin:
        Fractional timing slack kept above the measured path delay (an
        adaptive system still needs *some* guardband for fast transients
        and sensor error).
    """

    def __init__(self, safety_margin: float = 0.03) -> None:
        if not 0.0 <= safety_margin < 1.0:
            raise ConfigurationError("safety_margin must be in [0, 1)")
        self.safety_margin = safety_margin

    def clock_frequency(self, path_delay: float) -> float:
        """Highest safe clock for a measured critical-path delay."""
        if path_delay <= 0.0:
            raise ConfigurationError("path_delay must be positive")
        return 1.0 / (path_delay * (1.0 + self.safety_margin))

    def trace_from_trajectory(self, active_times, delay_shifts, fresh_delay: float) -> ClockTrace:
        """Clock trace implied by an aging trajectory.

        ``active_times``/``delay_shifts`` as produced by
        :class:`~repro.core.rejuvenator.Trajectory`; the controller
        re-times at every sample (the idealised, continuously adapting
        case — real designs adapt in steps and lose more).
        """
        active_times = np.asarray(active_times, dtype=float)
        delay_shifts = np.asarray(delay_shifts, dtype=float)
        if active_times.shape != delay_shifts.shape or active_times.ndim != 1:
            raise ConfigurationError("trajectory arrays must match and be 1-D")
        if fresh_delay <= 0.0:
            raise ConfigurationError("fresh_delay must be positive")
        frequencies = np.array(
            [self.clock_frequency(fresh_delay + shift) for shift in delay_shifts]
        )
        return ClockTrace(times=active_times, frequencies=frequencies)

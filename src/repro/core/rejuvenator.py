"""Drives a chip through operation and policy-scheduled sleep.

The :class:`Rejuvenator` is the runtime of the paper's techniques: it
interleaves active (wearout) segments at the operating point with sleep
segments whose conditions the policy chooses, and records the resulting
delay-shift trajectory — the paper's Fig. 9 picture.

Comparisons are made at equal *active* time: a healed system that slept
for a quarter of its stress time has delivered the same work as the
unhealed baseline, just later in wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.knobs import OperatingPoint
from repro.core.policies import ChipStatus, RecoveryPolicy
from repro.errors import ConfigurationError
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius


@dataclass
class Trajectory:
    """Delay-shift history of a rejuvenation run.

    ``times`` are wall-clock seconds, ``active_times`` cumulative active
    seconds, ``delay_shifts`` dTd in seconds, ``sleeping`` which segment
    kind produced each sample.
    """

    times: np.ndarray
    active_times: np.ndarray
    delay_shifts: np.ndarray
    sleeping: np.ndarray

    def __post_init__(self) -> None:
        n = self.times.size
        if not (self.active_times.size == self.delay_shifts.size == self.sleeping.size == n):
            raise ConfigurationError("trajectory arrays must have equal length")

    @property
    def final_shift(self) -> float:
        """Delay shift at the end of the run."""
        return float(self.delay_shifts[-1])

    @property
    def peak_shift(self) -> float:
        """Worst delay shift seen anywhere in the run — what margins see."""
        return float(self.delay_shifts.max())

    def cycle_peaks(self) -> np.ndarray:
        """Shift at each active->sleep transition (end of each stress leg)."""
        switch = np.nonzero(~self.sleeping[:-1] & self.sleeping[1:])[0]
        return self.delay_shifts[switch]

    def cycle_troughs(self) -> np.ndarray:
        """Shift at each sleep->active transition (end of each sleep leg)."""
        switch = np.nonzero(self.sleeping[:-1] & ~self.sleeping[1:])[0]
        return self.delay_shifts[switch]

    def sleep_fraction(self) -> float:
        """Fraction of wall-clock time spent asleep."""
        if self.times[-1] <= 0.0:
            return 0.0
        return float(1.0 - self.active_times[-1] / self.times[-1])

    def at_active_time(self, active_time: float) -> float:
        """Delay shift interpolated at a given cumulative active time."""
        return float(np.interp(active_time, self.active_times, self.delay_shifts))


class Rejuvenator:
    """Runs a chip under a recovery policy.

    Parameters
    ----------
    chip:
        Any chip-like object with ``apply_stress``, ``apply_recovery`` and
        ``delta_path_delay`` (an :class:`~repro.fpga.chip.FpgaChip`).
    operating:
        Conditions during active segments.
    stress_mode:
        AC for a normally operating (switching) design, DC for the worst
        case the paper stresses.
    max_segment:
        Longest simulated slice; policy actions are subdivided so the
        trajectory has at least this sampling resolution.
    """

    def __init__(
        self,
        chip,
        operating: OperatingPoint | None = None,
        stress_mode: StressMode = StressMode.DC,
        max_segment: float = 1800.0,
    ) -> None:
        if max_segment <= 0.0:
            raise ConfigurationError("max_segment must be positive")
        self.chip = chip
        self.operating = operating or OperatingPoint()
        self.stress_mode = stress_mode
        self.max_segment = max_segment

    def run(self, policy: RecoveryPolicy, total_active_time: float) -> Trajectory:
        """Run until ``total_active_time`` seconds of work were delivered."""
        if total_active_time <= 0.0:
            raise ConfigurationError("total_active_time must be positive")
        times = [0.0]
        active_times = [0.0]
        shifts = [self.chip.delta_path_delay()]
        sleeping = [False]
        wall = 0.0
        active = 0.0
        while active < total_active_time - 1e-9:
            status = ChipStatus(
                total_elapsed=wall, active_elapsed=active, delay_shift=shifts[-1]
            )
            action = policy.next_action(status)
            duration = action.duration
            if not action.sleep:
                duration = min(duration, total_active_time - active)
            remaining = duration
            while remaining > 1e-12:
                chunk = min(self.max_segment, remaining)
                if action.sleep:
                    self.chip.apply_recovery(
                        chunk,
                        temperature=celsius(action.sleep_temperature_c),
                        supply_voltage=action.sleep_voltage,
                    )
                else:
                    self.chip.apply_stress(
                        chunk,
                        temperature=self.operating.temperature,
                        supply_voltage=self.operating.supply_voltage,
                        mode=self.stress_mode,
                    )
                    active += chunk
                wall += chunk
                remaining -= chunk
                times.append(wall)
                active_times.append(active)
                shifts.append(self.chip.delta_path_delay())
                sleeping.append(action.sleep)
        return Trajectory(
            times=np.array(times),
            active_times=np.array(active_times),
            delay_shifts=np.array(shifts),
            sleeping=np.array(sleeping, dtype=bool),
        )

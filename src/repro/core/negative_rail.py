"""On-chip negative-voltage generation: the paper's Sec. 6.1 feasibility.

The paper lists three constraints on picking the sleep voltage: (1) it
must stay above the lateral pn-junction breakdown, (2) generating it
on-chip costs area and conversion power, (3) gate-induced drain leakage
(GIDL) grows steeply with the negative bias.  It concludes "a modest
negative voltage, such as -0.3 V, can be enough".

This module models the cost side — a charge-pump generator and a GIDL
law — so the benefit side (recovery acceleration, from the trap physics)
can be traded against it and the paper's choice located quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.technology import TechnologyParameters, TECH_40NM
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GidlModel:
    """Gate-induced drain leakage vs negative rail magnitude.

    ``current(v)`` returns the extra leakage per device (amps) at a sleep
    rail of ``v`` volts (v <= 0).  Exponential in the band-bending the
    negative bias adds — the standard GIDL field dependence.
    """

    i0_amps: float = 5.0e-12  # onset-scale leakage per device
    gamma_per_volt: float = 9.0

    def current(self, sleep_voltage: float) -> float:
        """Per-device GIDL at a (non-positive) sleep rail."""
        if sleep_voltage > 0.0:
            raise ConfigurationError("sleep_voltage must be non-positive")
        return float(self.i0_amps * np.expm1(self.gamma_per_volt * abs(sleep_voltage)))


@dataclass(frozen=True)
class ChargePumpGenerator:
    """On-chip negative-rail generator (charge pump).

    ``efficiency`` is the conversion efficiency delivering the sleep-rail
    load; ``static_power_watts`` the pump's own standby burn;
    ``area_overhead_fraction`` the silicon it costs (reported, not
    optimised here).
    """

    efficiency: float = 0.6
    static_power_watts: float = 2.0e-4
    area_overhead_fraction: float = 0.015

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if self.static_power_watts < 0.0 or self.area_overhead_fraction < 0.0:
            raise ConfigurationError("overheads must be non-negative")

    def input_power(self, load_power: float) -> float:
        """Supply power drawn to deliver ``load_power`` to the rail."""
        if load_power < 0.0:
            raise ConfigurationError("load_power must be non-negative")
        return self.static_power_watts + load_power / self.efficiency


@dataclass(frozen=True)
class RailOperatingPoint:
    """Cost/benefit summary of one candidate sleep voltage."""

    sleep_voltage: float
    feasible: bool
    recovery_fraction: float
    gidl_power_watts: float
    generator_power_watts: float

    @property
    def sleep_power_watts(self) -> float:
        """Total power the sleep rail costs at this operating point."""
        return self.generator_power_watts


def check_feasibility(
    sleep_voltage: float, tech: TechnologyParameters = TECH_40NM
) -> bool:
    """Constraint (1): stay above the junction-breakdown limit."""
    if sleep_voltage > 0.0:
        return False
    return sleep_voltage >= tech.min_recovery_voltage


def sweep_sleep_voltage(
    chip,
    voltages=(0.0, -0.1, -0.2, -0.3, -0.4, -0.5),
    recovery_hours: float = 6.0,
    temperature_c: float = 110.0,
    n_devices: int = 100000,
    gidl: GidlModel | None = None,
    generator: ChargePumpGenerator | None = None,
) -> list[RailOperatingPoint]:
    """Trade healing benefit against rail cost across candidate voltages.

    ``chip`` must arrive *stressed*; each candidate recovers from the
    same snapshot.  The benefit is the recovery fraction after the sleep;
    the cost combines GIDL leakage across ``n_devices`` (a whole-die
    scale) with the generator's conversion overhead.
    """
    from repro.units import celsius, hours

    gidl = gidl or GidlModel()
    generator = generator or ChargePumpGenerator()
    peak = chip.delta_path_delay()
    if peak <= 0.0:
        raise ConfigurationError("the chip must be stressed before the sweep")
    state = chip.snapshot()
    points: list[RailOperatingPoint] = []
    for voltage in voltages:
        feasible = check_feasibility(voltage, chip.tech)
        if not feasible:
            points.append(
                RailOperatingPoint(
                    sleep_voltage=voltage,
                    feasible=False,
                    recovery_fraction=float("nan"),
                    gidl_power_watts=float("nan"),
                    generator_power_watts=float("nan"),
                )
            )
            continue
        chip.restore(state)
        chip.apply_recovery(
            hours(recovery_hours),
            temperature=celsius(temperature_c),
            supply_voltage=voltage,
        )
        fraction = 1.0 - chip.delta_path_delay() / peak
        gidl_power = gidl.current(voltage) * abs(voltage) * n_devices
        generator_power = (
            generator.input_power(gidl_power) if voltage < 0.0 else 0.0
        )
        points.append(
            RailOperatingPoint(
                sleep_voltage=voltage,
                feasible=True,
                recovery_fraction=fraction,
                gidl_power_watts=gidl_power,
                generator_power_watts=generator_power,
            )
        )
    chip.restore(state)
    return points


def recommend_voltage(
    points: list[RailOperatingPoint],
    target_fraction: float = 0.80,
    gidl_budget_watts: float = 5.0e-6,
) -> float:
    """Pick the paper's "modest" rail from a sweep.

    Recovery gains are roughly linear in the rail (log-time trap physics)
    while GIDL grows exponentially, so the rational choice is the
    *least-negative* feasible voltage that (a) reaches the deep-
    rejuvenation target and (b) stays inside the GIDL power budget.  For
    the calibrated technology and the paper's 24 h/6 h schedule this
    lands at -0.3 V.
    """
    if not 0.0 < target_fraction < 1.0:
        raise ConfigurationError("target_fraction must be in (0, 1)")
    if gidl_budget_watts <= 0.0:
        raise ConfigurationError("gidl_budget_watts must be positive")
    candidates = [
        p
        for p in points
        if p.feasible
        and p.recovery_fraction >= target_fraction
        and p.gidl_power_watts <= gidl_budget_watts
    ]
    if not candidates:
        raise ConfigurationError(
            f"no feasible voltage reaches {target_fraction:.0%} recovery within "
            f"the {gidl_budget_watts:.1e} W GIDL budget"
        )
    return max(candidates, key=lambda p: p.sleep_voltage).sleep_voltage

"""Lifetime projection under recovery policies.

A design is dead (for margin purposes) when its accumulated delay shift
eats the timing guardband.  This module projects how long a chip delivers
work before crossing a shift budget, with and without self-healing —
quantifying the paper's claim that accelerated recovery "improves lifetime
and hence relaxes the design margins".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knobs import OperatingPoint
from repro.core.metrics import time_to_budget
from repro.core.policies import RecoveryPolicy
from repro.core.rejuvenator import Rejuvenator, Trajectory
from repro.errors import ConfigurationError
from repro.fpga.ring_oscillator import StressMode
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class LifetimeReport:
    """Outcome of a lifetime projection.

    ``active_lifetime`` is the cumulative *work* time (seconds) delivered
    before the shift budget was crossed (``inf`` when the horizon ended
    first); ``trajectory`` is the full history for inspection.
    """

    budget: float
    active_lifetime: float
    horizon: float
    trajectory: Trajectory

    @property
    def survived_horizon(self) -> bool:
        """True when the budget was never crossed within the horizon."""
        return self.active_lifetime == float("inf")


def project_lifetime(
    chip,
    policy: RecoveryPolicy,
    budget: float,
    horizon_active_time: float,
    operating: OperatingPoint | None = None,
    stress_mode: StressMode = StressMode.DC,
    max_segment: float = SECONDS_PER_HOUR,
) -> LifetimeReport:
    """Run ``chip`` under ``policy`` and find when the shift budget dies.

    ``budget`` is the tolerable delay shift in seconds (the timing
    guardband); ``horizon_active_time`` bounds the simulation.  Lifetime
    is counted in *active* seconds so a schedule that sleeps a lot cannot
    win by simply not working.
    """
    if budget <= 0.0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    rejuvenator = Rejuvenator(chip, operating, stress_mode=stress_mode, max_segment=max_segment)
    trajectory = rejuvenator.run(policy, horizon_active_time)
    lifetime = time_to_budget(trajectory.active_times, trajectory.delay_shifts, budget)
    return LifetimeReport(
        budget=budget,
        active_lifetime=lifetime,
        horizon=horizon_active_time,
        trajectory=trajectory,
    )

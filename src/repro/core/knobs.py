"""The recovery knobs: active:sleep ratio, sleep voltage, sleep temperature.

The paper's accelerated self-healing is controlled by exactly three knobs
(Sec. 4.1): the ratio of active (wearout) to sleep (rejuvenation) time
``alpha``, the supply voltage during sleep (0 V passive, negative for
accelerated recovery), and the temperature during sleep (ambient, or
elevated — e.g. neighbouring cores used as on-chip heaters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import celsius


@dataclass(frozen=True)
class RecoveryKnobs:
    """Sleep-phase settings for accelerated self-healing.

    Parameters
    ----------
    alpha:
        Ratio of active time to sleep time in one circadian cycle.  The
        paper's headline schedules use ``alpha = 4`` (rejuvenate for 1/4
        of the stress time).
    sleep_voltage:
        Core supply during sleep, in volts.  0.0 is passive recovery;
        negative values actively reverse the stress (paper uses -0.3 V).
    sleep_temperature_c:
        Temperature during sleep in Celsius (paper accelerates at 110 C).
    """

    alpha: float = 4.0
    sleep_voltage: float = -0.3
    sleep_temperature_c: float = 110.0

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.sleep_voltage > 0.0:
            raise ConfigurationError(
                f"sleep voltage must be non-positive, got {self.sleep_voltage}"
            )

    @property
    def sleep_fraction(self) -> float:
        """Fraction of a cycle spent asleep: ``1 / (1 + alpha)``."""
        return 1.0 / (1.0 + self.alpha)

    @property
    def active_fraction(self) -> float:
        """Fraction of a cycle spent active: ``alpha / (1 + alpha)``."""
        return self.alpha / (1.0 + self.alpha)

    @property
    def sleep_temperature(self) -> float:
        """Sleep temperature in kelvin."""
        return celsius(self.sleep_temperature_c)

    def split_cycle(self, period: float) -> tuple[float, float]:
        """(active_seconds, sleep_seconds) for a cycle of ``period`` seconds."""
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        return period * self.active_fraction, period * self.sleep_fraction


#: Passive sleep at ambient — what "sleep" means for electronics today
#: (the paper's strawman: inactivity, not active recovery).
PASSIVE_KNOBS = RecoveryKnobs(alpha=4.0, sleep_voltage=0.0, sleep_temperature_c=20.0)

#: The paper's headline accelerated-recovery setting.
ACCELERATED_KNOBS = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)


@dataclass(frozen=True)
class OperatingPoint:
    """Conditions while the system is active (stress side of the cycle)."""

    supply_voltage: float = 1.2
    temperature_c: float = 110.0

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0.0:
            raise ConfigurationError(
                f"operating supply must be positive, got {self.supply_voltage}"
            )

    @property
    def temperature(self) -> float:
        """Operating temperature in kelvin."""
        return celsius(self.temperature_c)

"""Virtual circadian rhythm: adaptive periodic deep rejuvenation.

The paper's future work: "exploring the prospect of periodic deep
rejuvenation on a periodic schedule and developing a *virtual circadian
rhythm*".  This controller implements it as a closed loop around the
proactive schedule: the cycle structure stays periodic and known in
advance (the property that enables cross-layer optimisation), but the
active:sleep ratio alpha adapts slowly — cycle to cycle — so the chip
wakes from every sleep with its residual shift at a target level, using
no more sleep than necessary.

Sensing uses the end-of-sleep readout that the schedule takes anyway, so
the controller needs no extra hardware beyond the odometer the testbench
already has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.errors import ConfigurationError
from repro.fpga.chip import CycleSegment
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius


@dataclass(frozen=True)
class RhythmCycle:
    """One adapted cycle of the virtual rhythm."""

    index: int
    alpha: float
    active_time: float
    sleep_time: float
    peak_shift: float
    trough_shift: float


@dataclass(frozen=True)
class RhythmResult:
    """Full adaptive run: cycles plus convergence facts."""

    cycles: tuple[RhythmCycle, ...]
    target_shift: float

    @property
    def final_alpha(self) -> float:
        """Alpha the controller settled on."""
        return self.cycles[-1].alpha

    @property
    def converged(self) -> bool:
        """True when the last cycles hold the trough at/below target."""
        tail = self.cycles[-2:]
        return all(c.trough_shift <= self.target_shift * 1.15 for c in tail)

    def alphas(self) -> np.ndarray:
        """Alpha trace over cycles."""
        return np.array([c.alpha for c in self.cycles])

    def troughs(self) -> np.ndarray:
        """End-of-sleep residual shift per cycle."""
        return np.array([c.trough_shift for c in self.cycles])


class VirtualCircadianRhythm:
    """Adaptive alpha controller over a fixed cycle period.

    Parameters
    ----------
    target_shift:
        Residual delay shift (seconds) the chip should wake with.
    period:
        Fixed cycle length; only the split between active and sleep moves.
    knobs:
        Sleep conditions (voltage, temperature); alpha is controlled.
    alpha_bounds:
        The controller never leaves this range (throughput and healing
        both need a floor).
    gain:
        Multiplicative adaptation strength per cycle.
    """

    def __init__(
        self,
        target_shift: float,
        period: float,
        knobs: RecoveryKnobs | None = None,
        operating: OperatingPoint | None = None,
        alpha_bounds: tuple[float, float] = (1.0, 16.0),
        gain: float = 0.5,
        stress_mode: StressMode = StressMode.DC,
    ) -> None:
        if target_shift <= 0.0:
            raise ConfigurationError("target_shift must be positive")
        if period <= 0.0:
            raise ConfigurationError("period must be positive")
        lo, hi = alpha_bounds
        if not 0.0 < lo < hi:
            raise ConfigurationError("alpha_bounds must satisfy 0 < low < high")
        if not 0.0 < gain <= 1.0:
            raise ConfigurationError("gain must be in (0, 1]")
        self.target_shift = target_shift
        self.period = period
        self.knobs = knobs or RecoveryKnobs()
        self.operating = operating or OperatingPoint()
        self.alpha_bounds = alpha_bounds
        self.gain = gain
        self.stress_mode = stress_mode

    def _next_alpha(self, alpha: float, trough: float) -> float:
        """Adapt alpha from the observed end-of-sleep residual.

        Over target -> sleep more (smaller alpha); under -> reclaim
        throughput.  Multiplicative update with clamping keeps the loop
        stable against the log-like plant.
        """
        lo, hi = self.alpha_bounds
        error = trough / self.target_shift
        adapted = alpha * error ** (-self.gain)
        return float(np.clip(adapted, lo, hi))

    def run(self, chip, n_cycles: int, alpha0: float | None = None) -> RhythmResult:
        """Run ``n_cycles`` adaptive cycles on a chip."""
        if n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        alpha = alpha0 if alpha0 is not None else self.knobs.alpha
        lo, hi = self.alpha_bounds
        if not lo <= alpha <= hi:
            raise ConfigurationError(f"alpha0 {alpha} outside bounds {self.alpha_bounds}")
        cycles: list[RhythmCycle] = []
        sleep_temp = celsius(self.knobs.sleep_temperature_c)
        for index in range(n_cycles):
            active = self.period * alpha / (1.0 + alpha)
            sleep = self.period - active
            chip.apply_stress(
                active,
                temperature=self.operating.temperature,
                supply_voltage=self.operating.supply_voltage,
                mode=self.stress_mode,
            )
            peak = chip.delta_path_delay()
            chip.apply_recovery(
                sleep, temperature=sleep_temp, supply_voltage=self.knobs.sleep_voltage
            )
            trough = chip.delta_path_delay()
            cycles.append(
                RhythmCycle(
                    index=index,
                    alpha=alpha,
                    active_time=active,
                    sleep_time=sleep,
                    peak_shift=peak,
                    trough_shift=trough,
                )
            )
            alpha = self._next_alpha(alpha, trough)
        return RhythmResult(cycles=tuple(cycles), target_shift=self.target_shift)

    def fast_forward(
        self, chip, n_cycles: int, alpha: float | None = None
    ) -> RhythmCycle:
        """Project ``n_cycles`` rhythm cycles at a *fixed* alpha, O(1) in count.

        The adaptive loop in :meth:`run` observes the end-of-sleep
        readout of every cycle, so it cannot be compressed; but once the
        controller has converged the schedule is periodic, and the
        remaining lifetime can be fast-forwarded through the chip's
        closed-form :meth:`~repro.fpga.chip.FpgaChip.apply_cycles`.  The
        first ``n_cycles - 1`` cycles are compressed and the last one
        runs explicitly, so the returned :class:`RhythmCycle` carries
        observed peak and trough shifts.
        """
        if n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        alpha = alpha if alpha is not None else self.knobs.alpha
        lo, hi = self.alpha_bounds
        if not lo <= alpha <= hi:
            raise ConfigurationError(
                f"alpha {alpha} outside bounds {self.alpha_bounds}"
            )
        active = self.period * alpha / (1.0 + alpha)
        sleep = self.period - active
        sleep_temp = celsius(self.knobs.sleep_temperature_c)
        if n_cycles > 1:
            segments = (
                CycleSegment.active(
                    active,
                    self.operating.temperature,
                    self.operating.supply_voltage,
                    mode=self.stress_mode,
                ),
                CycleSegment.sleep(sleep, sleep_temp, self.knobs.sleep_voltage),
            )
            chip.apply_cycles(segments, n_cycles - 1)
        chip.apply_stress(
            active,
            temperature=self.operating.temperature,
            supply_voltage=self.operating.supply_voltage,
            mode=self.stress_mode,
        )
        peak = chip.delta_path_delay()
        chip.apply_recovery(
            sleep, temperature=sleep_temp, supply_voltage=self.knobs.sleep_voltage
        )
        trough = chip.delta_path_delay()
        return RhythmCycle(
            index=n_cycles - 1,
            alpha=alpha,
            active_time=active,
            sleep_time=sleep,
            peak_shift=peak,
            trough_shift=trough,
        )

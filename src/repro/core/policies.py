"""Recovery scheduling policies: proactive, reactive, passive, none.

The paper (Sec. 2.2) argues for *proactive* accelerated rejuvenation —
sleep scheduled ahead of any sign of stress — over *reactive* recovery
triggered when aging crosses a threshold.  Both are implemented here, plus
the two baselines the argument is made against: no recovery at all, and
today's "sleep" (passive inactivity at ambient, 0 V).

A policy is consulted by :class:`repro.core.rejuvenator.Rejuvenator` once
per decision step and answers with a :class:`RecoveryAction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.knobs import RecoveryKnobs
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class ChipStatus:
    """What a policy may look at when deciding.

    ``delay_shift`` is the current dTd in seconds; reactive policies use
    it, proactive policies deliberately do not (they need no aging sensor
    — one of the paper's arguments for proactivity).
    """

    total_elapsed: float
    active_elapsed: float
    delay_shift: float


@dataclass(frozen=True)
class RecoveryAction:
    """One scheduling decision: run active or sleep for ``duration``."""

    duration: float
    sleep: bool
    sleep_voltage: float = 0.0
    sleep_temperature_c: float = 20.0

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError(f"action duration must be positive, got {self.duration}")


class RecoveryPolicy(Protocol):
    """Anything that can schedule active/sleep segments."""

    def next_action(self, status: ChipStatus) -> RecoveryAction:
        """Decide what the chip does next."""
        ...


class NoRecoveryPolicy:
    """Baseline: the chip runs continuously and never sleeps."""

    def __init__(self, segment: float = SECONDS_PER_HOUR) -> None:
        if segment <= 0.0:
            raise ConfigurationError("segment must be positive")
        self.segment = segment

    def next_action(self, status: ChipStatus) -> RecoveryAction:
        """Always another active segment."""
        return RecoveryAction(duration=self.segment, sleep=False)


class ProactivePolicy:
    """Circadian scheduling: fixed active/sleep cycles, no sensing needed.

    Parameters
    ----------
    knobs:
        Recovery knobs (alpha and sleep conditions).
    period:
        Length of one active+sleep cycle in seconds.
    """

    def __init__(self, knobs: RecoveryKnobs, period: float) -> None:
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.knobs = knobs
        self.period = period
        self._active, self._sleep = knobs.split_cycle(period)
        self._phase_active = True

    def next_action(self, status: ChipStatus) -> RecoveryAction:
        """Alternate active and sleep segments of the planned lengths."""
        if self._phase_active:
            self._phase_active = False
            return RecoveryAction(duration=self._active, sleep=False)
        self._phase_active = True
        return RecoveryAction(
            duration=self._sleep,
            sleep=True,
            sleep_voltage=self.knobs.sleep_voltage,
            sleep_temperature_c=self.knobs.sleep_temperature_c,
        )


class PassiveSleepPolicy(ProactivePolicy):
    """Today's "sleep": same duty cycle, but inactivity at ambient and 0 V.

    The contrast case for the paper's central claim that sleep should be
    an *active* recovery period.
    """

    def __init__(self, alpha: float, period: float, ambient_c: float = 20.0) -> None:
        knobs = RecoveryKnobs(alpha=alpha, sleep_voltage=0.0, sleep_temperature_c=ambient_c)
        super().__init__(knobs, period)


class ReactivePolicy:
    """Recover only when measured aging crosses a threshold.

    Needs an aging sensor (the paper cites silicon odometers); recovers
    with the given knobs for a fixed duration whenever ``delay_shift``
    exceeds ``trigger_shift``, and runs active otherwise.
    """

    def __init__(
        self,
        knobs: RecoveryKnobs,
        trigger_shift: float,
        recovery_duration: float,
        segment: float = SECONDS_PER_HOUR,
    ) -> None:
        if trigger_shift <= 0.0:
            raise ConfigurationError("trigger_shift must be positive")
        if recovery_duration <= 0.0:
            raise ConfigurationError("recovery_duration must be positive")
        if segment <= 0.0:
            raise ConfigurationError("segment must be positive")
        self.knobs = knobs
        self.trigger_shift = trigger_shift
        self.recovery_duration = recovery_duration
        self.segment = segment
        self.triggers = 0

    def next_action(self, status: ChipStatus) -> RecoveryAction:
        """Sleep when the sensed shift exceeds the trigger, else run."""
        if status.delay_shift >= self.trigger_shift:
            self.triggers += 1
            return RecoveryAction(
                duration=self.recovery_duration,
                sleep=True,
                sleep_voltage=self.knobs.sleep_voltage,
                sleep_temperature_c=self.knobs.sleep_temperature_c,
            )
        return RecoveryAction(duration=self.segment, sleep=False)

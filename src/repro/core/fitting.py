"""Extraction of the paper's first-order model parameters from data.

The paper fits its closed forms to measured RO data ("beta, A and C are
fitting parameters and can be extracted from measurement results", Sec.
3.2; Table 3 lists the extracted values).  This module reproduces that
step against the virtual silicon:

* :func:`fit_stress_parameters` — (beta, A, C) of Eq. (10) from a stress
  series;
* :func:`fit_recovery_parameters` — (phi2, A, C, k1, k2) of Eq. (11) from
  a recovery series;
* :func:`fit_physics_scaling` — (K, E0, B) of Eqs. (2)/(4) from
  per-condition prefactors, giving the cross-condition temperature and
  voltage scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

import numpy as np
from scipy import optimize

from repro.bti.firstorder import PhysicsScaling, RecoveryParameters, StressParameters
from repro.errors import FittingError
from repro.guard import safe_exp
from repro.units import BOLTZMANN_EV

T = TypeVar("T")


@dataclass(frozen=True)
class FitReport(Generic[T]):
    """A fitted parameter object plus goodness-of-fit numbers.

    ``nrmse`` is the RMSE normalised by the data range — the scale-free
    number the validation thresholds use.
    """

    parameters: T
    rmse: float
    nrmse: float
    r_squared: float
    n_points: int


def _goodness(measured: np.ndarray, predicted: np.ndarray) -> tuple[float, float, float]:
    residual = measured - predicted
    rmse = float(np.sqrt(np.mean(residual**2)))
    value_range = float(measured.max() - measured.min())
    nrmse = rmse / value_range if value_range > 0.0 else float("inf")
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum((measured - measured.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else float("nan")
    return rmse, nrmse, r_squared


def _check_series(times, values, minimum: int) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape or times.ndim != 1:
        raise FittingError("times and values must be 1-D arrays of equal length")
    if times.size < minimum:
        raise FittingError(f"need at least {minimum} samples, got {times.size}")
    return times, values


def fit_stress_parameters(times, shifts) -> FitReport[StressParameters]:
    """Fit ``shift = beta * (A + log(1 + C*t))`` to a stress series.

    ``times`` in seconds from the start of stress, ``shifts`` the measured
    delay (or threshold) change.  Returns the fitted
    :class:`StressParameters` with goodness-of-fit.
    """
    times, shifts = _check_series(times, shifts, minimum=4)
    if np.all(shifts <= 0.0):
        raise FittingError("stress series shows no degradation to fit")

    scale = float(np.max(np.abs(shifts)))

    def model(theta: np.ndarray, t: np.ndarray) -> np.ndarray:
        beta, offset_a, log_c = theta
        return beta * scale * (offset_a + np.log1p(np.exp(log_c) * t))

    def residuals(theta: np.ndarray) -> np.ndarray:
        # Normalised by the data scale: raw nanosecond-magnitude residuals
        # sit below least_squares' default tolerances and stall it.
        return (model(theta, times) - shifts) / scale

    # Start C so the knee sits mid-series, A small, beta matching the end.
    t_mid = max(float(np.median(times[times > 0])), 1.0)
    theta0 = np.array([0.3, 0.1, -np.log(t_mid)])
    result = optimize.least_squares(
        residuals,
        theta0,
        bounds=([1e-9, 0.0, -60.0], [np.inf, 10.0, 10.0]),
        max_nfev=5000,
    )
    if not result.success:
        raise FittingError(f"stress fit did not converge: {result.message}")
    beta, offset_a, log_c = result.x
    params = StressParameters(
        prefactor=float(beta * scale), offset_a=float(offset_a), rate_c=float(np.exp(log_c))
    )
    rmse, nrmse, r2 = _goodness(shifts, np.asarray(params.shift(times)))
    return FitReport(params, rmse, nrmse, r2, times.size)


def fit_recovery_parameters(
    stress_time: float,
    shift_at_stress_end: float,
    times,
    shifts,
    rate_c: float | None = None,
) -> FitReport[RecoveryParameters]:
    """Fit the paper's Eq. (11) recovery form to a recovery series.

    ``times`` are seconds since stress removal; ``shifts`` the remaining
    delay change (starting near ``shift_at_stress_end`` and falling).
    When ``rate_c`` is given (e.g. from the matching stress fit) it is
    held fixed, as the paper shares C between the phases.
    """
    times, shifts = _check_series(times, shifts, minimum=4)
    if stress_time <= 0.0 or shift_at_stress_end <= 0.0:
        raise FittingError("recovery fitting needs a positive stress time and peak shift")

    scale = shift_at_stress_end
    fit_c = rate_c is None

    def build(theta: np.ndarray) -> RecoveryParameters:
        phi2, offset_a, log_c, k1, k2 = theta
        return RecoveryParameters(
            prefactor=float(phi2 * scale),
            offset_a=float(offset_a),
            rate_c=float(np.exp(log_c)) if fit_c else float(rate_c),
            k1=float(k1),
            k2=float(k2),
        )

    def residuals(theta: np.ndarray) -> np.ndarray:
        params = build(theta)
        predicted = params.residual(shift_at_stress_end, stress_time, times)
        # Scale-normalised for the same tolerance reason as the stress fit.
        return (np.asarray(predicted) - shifts) / scale

    theta0 = np.array([0.01, 0.1, -np.log(max(float(np.median(times[times > 0])), 1.0)), 0.5, 1.5])
    lower = [0.0, 0.0, -60.0, 0.0, 1e-6]
    upper = [np.inf, 10.0, 10.0, 1e3, 1e3]
    result = optimize.least_squares(residuals, theta0, bounds=(lower, upper), max_nfev=8000)
    if not result.success:
        raise FittingError(f"recovery fit did not converge: {result.message}")
    params = build(result.x)
    predicted = np.asarray(params.residual(shift_at_stress_end, stress_time, times))
    rmse, nrmse, r2 = _goodness(shifts, predicted)
    return FitReport(params, rmse, nrmse, r2, times.size)


@dataclass(frozen=True)
class ArrheniusRate:
    """Thermally activated rate law ``C(T) = C_ref * exp(-Ea/k (1/T - 1/Tref))``.

    For log-like (TD) aging, temperature shifts the degradation curve
    along log-time — it accelerates the rate constant C of Eq. (10), not
    the per-decade slope beta.  This is the law accelerated-test
    extrapolation rests on.
    """

    c_ref: float
    ea_ev: float
    reference_temperature: float

    def rate(self, temperature: float) -> float:
        """C at a temperature (kelvin)."""
        if temperature <= 0.0:
            raise FittingError("temperature must be positive kelvin")
        exponent = (-self.ea_ev / BOLTZMANN_EV) * (
            1.0 / temperature - 1.0 / self.reference_temperature
        )
        # Clamped: extrapolating a fitted law to an extreme temperature
        # must saturate rather than overflow to inf (see repro.guard).
        return float(self.c_ref * safe_exp(exponent))


def fit_arrhenius_rate(temperatures, rates) -> FitReport[ArrheniusRate]:
    """Extract an activation energy from per-temperature rate constants.

    Linear regression of ``ln C`` on ``1/kT``; needs at least three
    temperatures.  The reference temperature is the hottest one (where
    accelerated data is densest).
    """
    temperatures = np.asarray(temperatures, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if temperatures.shape != rates.shape or temperatures.ndim != 1:
        raise FittingError("temperatures and rates must be matching 1-D arrays")
    if temperatures.size < 3:
        raise FittingError("need at least three temperatures")
    if np.any(rates <= 0.0) or np.any(temperatures <= 0.0):
        raise FittingError("rates and temperatures must be positive")
    inv_kt = 1.0 / (BOLTZMANN_EV * temperatures)
    design = np.column_stack([np.ones_like(inv_kt), -inv_kt])
    coeffs, *_ = np.linalg.lstsq(design, np.log(rates), rcond=None)
    intercept, ea = coeffs
    t_ref = float(temperatures.max())
    params = ArrheniusRate(
        c_ref=float(np.exp(intercept - ea / (BOLTZMANN_EV * t_ref))),
        ea_ev=float(ea),
        reference_temperature=t_ref,
    )
    predicted = np.array([params.rate(t) for t in temperatures])
    rmse, nrmse, r2 = _goodness(np.log(rates), np.log(predicted))
    return FitReport(params, rmse, nrmse, r2, temperatures.size)


def fit_physics_scaling(
    voltages, temperatures, prefactors
) -> FitReport[PhysicsScaling]:
    """Fit ``phi = K * exp(-E0/kT) * exp(b*V/kT)`` across conditions.

    Linear regression of ``ln(phi)`` on ``[-1/kT, V/kT]`` (paper Eqs. 2,
    4, 13).  Needs at least three distinct (V, T) conditions.
    """
    voltages = np.asarray(voltages, dtype=float)
    temperatures = np.asarray(temperatures, dtype=float)
    prefactors = np.asarray(prefactors, dtype=float)
    if not voltages.shape == temperatures.shape == prefactors.shape:
        raise FittingError("voltages, temperatures and prefactors must align")
    if voltages.size < 3:
        raise FittingError("need at least three conditions to fit the scaling")
    if np.any(prefactors <= 0.0):
        raise FittingError("prefactors must be positive to fit in log space")

    inv_kt = 1.0 / (BOLTZMANN_EV * temperatures)
    design = np.column_stack([np.ones_like(inv_kt), -inv_kt, voltages * inv_kt])
    target = np.log(prefactors)
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    ln_k, e0, b_field = coeffs
    params = PhysicsScaling(
        k_prefactor=float(np.exp(ln_k)), e0_ev=float(e0), b_field_ev_per_volt=float(b_field)
    )
    predicted = np.array(
        [params.prefactor(v, t) for v, t in zip(voltages, temperatures)]
    )
    rmse, nrmse, r2 = _goodness(prefactors, predicted)
    return FitReport(params, rmse, nrmse, r2, voltages.size)

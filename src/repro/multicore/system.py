"""The multi-core system simulation loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.multicore.core_model import CoreAgingModel, CoreParameters, CoreSegment
from repro.multicore.scheduler import Scheduler
from repro.multicore.thermal import ThermalGrid
from repro.obs import get_tracer
from repro.units import hours


@dataclass
class SystemHistory:
    """Per-epoch record of a multi-core run.

    ``delay_shifts`` has shape (epochs+1, cores): row 0 is the initial
    state, row i the state after epoch i.  ``temperatures`` and
    ``active_mask`` have shape (epochs, cores).
    """

    epoch_duration: float
    delay_shifts: np.ndarray
    temperatures: np.ndarray
    active_mask: np.ndarray
    energy_joules: float

    @property
    def n_epochs(self) -> int:
        """Number of simulated epochs."""
        return self.active_mask.shape[0]

    @property
    def times(self) -> np.ndarray:
        """Wall-clock seconds at each recorded state row."""
        return np.arange(self.delay_shifts.shape[0]) * self.epoch_duration

    def worst_core_shift(self) -> np.ndarray:
        """System-level margin consumption: max shift across cores per row."""
        return self.delay_shifts.max(axis=1)

    def final_shifts(self) -> np.ndarray:
        """Per-core delay shift at the end of the run."""
        return self.delay_shifts[-1]

    def utilisation(self) -> np.ndarray:
        """Fraction of epochs each core spent active."""
        return self.active_mask.mean(axis=0)


class MulticoreSystem:
    """Cores + thermal grid + scheduler, stepped epoch by epoch.

    Parameters
    ----------
    grid:
        Thermal network; its size fixes the core count (paper Fig. 10 uses
        a 2 x 4 grid of 8 cores).
    core_params:
        Shared per-core electrical parameters.
    seed:
        Seeds the per-core trap populations (each core gets a child
        stream, so cores differ the way real dies do).
    tracer:
        Telemetry sink for run spans and epoch counters; defaults to the
        process tracer (a no-op unless one was installed).
    guard:
        Physics-contract checker shared by the cores and (when the grid
        is built here) the thermal solve; defaults to the ambient guard.
    """

    def __init__(
        self,
        grid: ThermalGrid | None = None,
        core_params: CoreParameters | None = None,
        seed: int | None = 0,
        tracer=None,
        guard=None,
    ) -> None:
        self.grid = grid if grid is not None else ThermalGrid(guard=guard)
        params = core_params or CoreParameters()
        master = np.random.default_rng(seed)
        self.cores = [
            CoreAgingModel(f"core-{i + 1}", params=params, rng=child, guard=guard)
            for i, child in enumerate(master.spawn(self.grid.n_cores))
        ]
        self.tracer = tracer if tracer is not None else get_tracer()
        self._epochs = self.tracer.counter(
            "multicore.epochs", "scheduler epochs simulated"
        )
        self._core_steps = self.tracer.counter(
            "multicore.core_steps", "per-core aging steps (active or sleeping)"
        )

    @property
    def n_cores(self) -> int:
        """Number of cores in the system."""
        return len(self.cores)

    def delay_shifts(self) -> np.ndarray:
        """Current per-core delay shift (seconds)."""
        return np.array([core.delta_path_delay() for core in self.cores])

    def total_energy(self) -> float:
        """Energy consumed so far across all cores (joules)."""
        return float(sum(core.energy_joules for core in self.cores))

    def run(
        self,
        scheduler: Scheduler,
        workload,
        n_epochs: int,
        epoch_duration: float = hours(1.0),
        epoch_offset: int = 0,
    ) -> SystemHistory:
        """Simulate ``n_epochs`` epochs under a scheduler and workload.

        Each epoch: the workload states its demand, the scheduler picks
        the active set and sleep bias, the thermal grid finds the
        steady-state temperature field, and every core ages accordingly.
        ``epoch_offset`` shifts the epoch indices the scheduler and
        workload see — callers that step the system one epoch at a time
        (the lifetime projector) pass it so rotation policies keep
        rotating.
        """
        if n_epochs <= 0:
            raise ConfigurationError("n_epochs must be positive")
        if epoch_duration <= 0.0:
            raise ConfigurationError("epoch_duration must be positive")
        n = self.n_cores
        shifts = np.empty((n_epochs + 1, n))
        temps = np.empty((n_epochs, n))
        active_mask = np.zeros((n_epochs, n), dtype=bool)
        shifts[0] = self.delay_shifts()
        energy_start = self.total_energy()
        with self.tracer.span(
            "multicore.run",
            scheduler=type(scheduler).__name__,
            n_cores=n,
            n_epochs=n_epochs,
            epoch_duration=epoch_duration,
        ) as span:
            for epoch in range(n_epochs):
                logical_epoch = epoch_offset + epoch
                demand = workload.demand(logical_epoch)
                decision = scheduler.decide(
                    logical_epoch, demand, shifts[epoch], self.grid
                )
                active = set(decision.active)
                if len(active) > n:
                    raise ConfigurationError(
                        "scheduler activated more cores than exist"
                    )
                powers = np.array(
                    [
                        self.cores[i].params.active_power
                        if i in active
                        else self.cores[i].params.sleep_power
                        for i in range(n)
                    ]
                )
                temperatures = self.grid.steady_state(powers)
                for i, core in enumerate(self.cores):
                    if i in active:
                        core.run_active(epoch_duration, temperatures[i])
                    else:
                        core.sleep(
                            epoch_duration,
                            temperatures[i],
                            voltage=decision.sleep_voltage,
                        )
                temps[epoch] = temperatures
                active_mask[epoch] = [i in active for i in range(n)]
                shifts[epoch + 1] = self.delay_shifts()
            self._epochs.inc(n_epochs)
            self._core_steps.inc(n_epochs * n)
            span.set("sim_advanced", n_epochs * epoch_duration)
        if span.duration > 0.0:
            self.tracer.gauge(
                "multicore.sim_seconds_per_wall_second",
                "simulated time advanced per wall-clock second",
            ).set(n_epochs * epoch_duration / span.duration)
        return SystemHistory(
            epoch_duration=epoch_duration,
            delay_shifts=shifts,
            temperatures=temps,
            active_mask=active_mask,
            energy_joules=self.total_energy() - energy_start,
        )

    def fast_forward(
        self,
        scheduler: Scheduler,
        demand: int,
        n_rotations: int,
        epoch_duration: float = hours(1.0),
        epoch_offset: int = 0,
    ) -> np.ndarray:
        """Advance whole schedule rotations at O(1) cost in ``n_rotations``.

        Valid only for schedulers declaring ``aging_independent = True``:
        with constant ``demand`` their schedule repeats every ``n_cores``
        epochs, so each core sees a fixed periodic active/sleep pattern
        that the trap ensemble's closed-form cycle composition can
        compress.  One rotation (``n_cores`` epochs) is decided and its
        thermal fields solved normally; every core then jumps through
        ``n_rotations`` repetitions of its pattern.  Per-epoch history is
        not recorded — use :meth:`run` for trajectories.  Callers that
        resume stepping afterwards should advance their ``epoch_offset``
        by ``n_rotations * n_cores``.  Returns the final per-core delay
        shifts.
        """
        if not getattr(scheduler, "aging_independent", False):
            raise ConfigurationError(
                f"{type(scheduler).__name__} decisions depend on the aging "
                "state; its schedule is not periodic and cannot be "
                "fast-forwarded"
            )
        if n_rotations <= 0:
            raise ConfigurationError("n_rotations must be positive")
        if epoch_duration <= 0.0:
            raise ConfigurationError("epoch_duration must be positive")
        n = self.n_cores
        aging = self.delay_shifts()  # ignored by aging-independent policies
        patterns: list[list[CoreSegment]] = [[] for _ in range(n)]
        with self.tracer.span(
            "multicore.fast_forward",
            scheduler=type(scheduler).__name__,
            n_cores=n,
            n_rotations=n_rotations,
            epoch_duration=epoch_duration,
        ) as span:
            for k in range(n):
                decision = scheduler.decide(
                    epoch_offset + k, demand, aging, self.grid
                )
                active = set(decision.active)
                if len(active) > n:
                    raise ConfigurationError(
                        "scheduler activated more cores than exist"
                    )
                powers = np.array(
                    [
                        self.cores[i].params.active_power
                        if i in active
                        else self.cores[i].params.sleep_power
                        for i in range(n)
                    ]
                )
                temperatures = self.grid.steady_state(powers)
                for i in range(n):
                    patterns[i].append(
                        CoreSegment(
                            duration=epoch_duration,
                            temperature=temperatures[i],
                            active=i in active,
                            sleep_voltage=0.0 if i in active else decision.sleep_voltage,
                        )
                    )
            for core, pattern in zip(self.cores, patterns):
                core.run_cycles(pattern, n_rotations)
            self._epochs.inc(n_rotations * n)
            self._core_steps.inc(n_rotations * n * n)
            span.set("sim_advanced", n_rotations * n * epoch_duration)
        return self.delay_shifts()

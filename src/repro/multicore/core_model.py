"""Per-core aging model: a critical path driven by the trap ensemble.

A core is abstracted as one representative critical path whose PMOS and
NMOS populations age with the same physics as the FPGA substrate.  While
the core runs, its devices see AC stress at the core supply and its local
die temperature; while it sleeps, they see the recovery bias the scheduler
chose (0 V for plain power gating, negative for accelerated self-healing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bti.traps import CyclePhase, TrapParameters, TrapPopulation
from repro.errors import ConfigurationError
from repro.units import nanoseconds

#: Trap count of one "device equivalent" — matches the per-transistor
#: population of the FPGA substrate so both share one calibration.
_REFERENCE_TRAPS_PER_DEVICE = 80.0


@dataclass(frozen=True)
class CoreParameters:
    """Electrical/thermal description of one core.

    ``delay_sensitivity`` maps average device dVth (volts) to relative
    critical-path slowdown per volt — the Eq. (6) factor
    ``1/(Vdd - Vth0)`` times the stressed fraction of the path.
    """

    fresh_path_delay: float = nanoseconds(0.5)  # ~2 GHz critical path
    supply_voltage: float = 1.2
    delay_sensitivity: float = 0.9
    active_power: float = 10.0  # watts while running
    sleep_power: float = 0.4  # watts while power gated
    # Overhead of the on-chip negative-voltage generator while it is in
    # use, as a fraction of active power (paper Sec. 6.1 cost note).
    negative_rail_overhead: float = 0.02
    nbti_traps: TrapParameters = field(
        default_factory=lambda: TrapParameters(mean_trap_count=600.0)
    )
    pbti_traps: TrapParameters = field(
        default_factory=lambda: TrapParameters(
            mean_trap_count=420.0, impact_mean_volts=2.56e-3
        )
    )

    def __post_init__(self) -> None:
        if self.fresh_path_delay <= 0.0:
            raise ConfigurationError("fresh_path_delay must be positive")
        if self.delay_sensitivity <= 0.0:
            raise ConfigurationError("delay_sensitivity must be positive")
        if self.active_power <= 0.0 or self.sleep_power < 0.0:
            raise ConfigurationError("powers must be positive (active) / non-negative (sleep)")


@dataclass(frozen=True)
class CoreSegment:
    """One leg of a repeating per-core schedule.

    A sequence of segments repeated ``n`` times feeds
    :meth:`CoreAgingModel.run_cycles`; an active leg stresses at the
    core supply (AC, 50% duty, like :meth:`CoreAgingModel.run_active`),
    a sleep leg recovers at ``sleep_voltage``.
    """

    duration: float
    temperature: float
    active: bool
    sleep_voltage: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ConfigurationError(
                f"segment duration must be non-negative, got {self.duration}"
            )
        if not self.active and self.sleep_voltage > 0.0:
            raise ConfigurationError("sleep voltage must be non-positive")


class CoreAgingModel:
    """Aging state and energy accounting of one core."""

    def __init__(
        self,
        core_id: str,
        params: CoreParameters | None = None,
        rng: np.random.Generator | int | None = None,
        guard=None,
    ) -> None:
        self.core_id = core_id
        self.params = params or CoreParameters()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        rng_p, rng_n = rng.spawn(2)
        self._pmos = TrapPopulation(
            self.params.nbti_traps, n_owners=1, rng=rng_p, guard=guard
        )
        self._nmos = TrapPopulation(
            self.params.pbti_traps, n_owners=1, rng=rng_n, guard=guard
        )
        # The large population represents the many devices of the critical
        # path; dividing the total shift by the number of 80-trap device
        # equivalents yields the average per-device shift with low
        # statistical noise.
        self._pmos_devices = max(self._pmos.n_traps, 1) / _REFERENCE_TRAPS_PER_DEVICE
        self._nmos_devices = max(self._nmos.n_traps, 1) / _REFERENCE_TRAPS_PER_DEVICE
        self.energy_joules = 0.0
        self.active_seconds = 0.0
        self.sleep_seconds = 0.0

    def average_delta_vth(self) -> float:
        """Average device threshold shift on the critical path (volts)."""
        pmos = float(self._pmos.delta_vth()[0]) / self._pmos_devices
        nmos = float(self._nmos.delta_vth()[0]) / self._nmos_devices
        return 0.5 * (pmos + nmos)

    def delta_path_delay(self) -> float:
        """Critical-path delay increase (seconds)."""
        return (
            self.params.fresh_path_delay
            * self.params.delay_sensitivity
            * self.average_delta_vth()
        )

    def relative_slowdown(self) -> float:
        """Fractional frequency loss the core has accumulated."""
        return self.delta_path_delay() / self.params.fresh_path_delay

    def run_active(self, duration: float, temperature: float) -> None:
        """Run the core (AC stress at supply) for ``duration`` seconds."""
        half = self.params.supply_voltage
        self._pmos.evolve(duration, half, temperature, duty=0.5, relax_voltage=0.0)
        self._nmos.evolve(duration, half, temperature, duty=0.5, relax_voltage=0.0)
        self.active_seconds += duration
        self.energy_joules += self.params.active_power * duration

    def sleep(self, duration: float, temperature: float, voltage: float = 0.0) -> None:
        """Power-gate the core; negative ``voltage`` heals actively."""
        if voltage > 0.0:
            raise ConfigurationError("sleep voltage must be non-positive")
        self._pmos.evolve(duration, voltage, temperature)
        self._nmos.evolve(duration, voltage, temperature)
        self.sleep_seconds += duration
        power = self.params.sleep_power
        if voltage < 0.0:
            power += self.params.negative_rail_overhead * self.params.active_power
        self.energy_joules += power * duration

    def run_cycles(self, segments: Sequence[CoreSegment], n: int) -> None:
        """Advance through ``n`` repetitions of a fixed segment sequence.

        Same physics as alternating :meth:`run_active` / :meth:`sleep` in
        a loop, but routed through the trap ensemble's closed-form
        :meth:`~repro.bti.traps.TrapPopulation.evolve_cycles`, so the
        cost is O(1) in ``n``.  Energy and time accounting scale exactly
        with the cycle count.  Only valid when every cycle is identical —
        any per-cycle feedback (aging-aware scheduling, drifting
        temperatures) must stay on the loop path.
        """
        if n < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {n}")
        if not segments:
            raise ConfigurationError("run_cycles needs at least one segment")
        if n == 0:
            return
        supply = self.params.supply_voltage
        phases: list[CyclePhase] = []
        energy_per_cycle = 0.0
        active_per_cycle = 0.0
        sleep_per_cycle = 0.0
        for segment in segments:
            if segment.active:
                phases.append(
                    CyclePhase(
                        duration=segment.duration,
                        stress_voltage=supply,
                        temperature=segment.temperature,
                        duty=0.5,
                        relax_voltage=0.0,
                    )
                )
                energy_per_cycle += self.params.active_power * segment.duration
                active_per_cycle += segment.duration
            else:
                phases.append(
                    CyclePhase(
                        duration=segment.duration,
                        stress_voltage=segment.sleep_voltage,
                        temperature=segment.temperature,
                    )
                )
                power = self.params.sleep_power
                if segment.sleep_voltage < 0.0:
                    power += self.params.negative_rail_overhead * self.params.active_power
                energy_per_cycle += power * segment.duration
                sleep_per_cycle += segment.duration
        self._pmos.evolve_cycles(phases, n)
        self._nmos.evolve_cycles(phases, n)
        self.active_seconds += n * active_per_cycle
        self.sleep_seconds += n * sleep_per_cycle
        self.energy_joules += n * energy_per_cycle

    def snapshot(self) -> tuple:
        """Capture aging and accounting state for what-if runs."""
        return (
            self._pmos.snapshot(),
            self._nmos.snapshot(),
            self.energy_joules,
            self.active_seconds,
            self.sleep_seconds,
        )

    def restore(self, state: tuple) -> None:
        """Restore a :meth:`snapshot`."""
        pmos, nmos, energy, active, sleep = state
        self._pmos.restore(pmos)
        self._nmos.restore(nmos)
        self.energy_joules = energy
        self.active_seconds = active
        self.sleep_seconds = sleep

"""Steady-state thermal RC grid of cores — the on-chip heater substrate.

The paper's first multi-core proposal (Sec. 6.2) uses active cores as
heaters for sleeping neighbours.  The grid solves the steady-state heat
equation on a networkx grid graph: each core has a thermal conductance to
ambient and lateral conductances to its neighbours, so a sleeping core
surrounded by busy ones settles tens of degrees above ambient — for free.

Epoch lengths in the scheduler (minutes and up) are far above silicon
thermal time constants (milliseconds), so a steady-state solve per epoch
is the right fidelity.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.guard import get_guard
from repro.units import celsius


class ThermalGrid:
    """Thermal network for a rows x cols core grid.

    Parameters
    ----------
    rows / cols:
        Grid dimensions (the paper's Fig. 10 example is 2 x 4).
    theta_ambient:
        Thermal resistance core -> ambient in K/W (heatsink path).
    theta_coupling:
        Lateral thermal resistance between adjacent cores in K/W.
    ambient_c:
        Ambient (heatsink inlet) temperature in Celsius.
    """

    def __init__(
        self,
        rows: int = 2,
        cols: int = 4,
        theta_ambient: float = 4.0,
        theta_coupling: float = 2.0,
        ambient_c: float = 35.0,
        guard=None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        if theta_ambient <= 0.0 or theta_coupling <= 0.0:
            raise ConfigurationError("thermal resistances must be positive")
        self.rows = rows
        self.cols = cols
        self.theta_ambient = theta_ambient
        self.theta_coupling = theta_coupling
        self.ambient = celsius(ambient_c)
        #: Contract checker for the solved temperatures (ambient default).
        self.guard = guard if guard is not None else get_guard()
        self.graph = nx.grid_2d_graph(rows, cols)
        self._nodes = sorted(self.graph.nodes)
        self._index = {node: i for i, node in enumerate(self._nodes)}
        n = len(self._nodes)
        g_amb = 1.0 / theta_ambient
        g_cpl = 1.0 / theta_coupling
        matrix = np.zeros((n, n))
        for node in self._nodes:
            i = self._index[node]
            matrix[i, i] += g_amb
            for neighbour in self.graph.neighbors(node):
                j = self._index[neighbour]
                matrix[i, i] += g_cpl
                matrix[i, j] -= g_cpl
        self._conductance = matrix

    @property
    def n_cores(self) -> int:
        """Number of grid sites."""
        return len(self._nodes)

    def node_of(self, core_index: int) -> tuple[int, int]:
        """(row, col) of a core index (row-major order)."""
        if not 0 <= core_index < self.n_cores:
            raise ConfigurationError(f"core index {core_index} outside the grid")
        return self._nodes[core_index]

    def neighbours(self, core_index: int) -> list[int]:
        """Indices of the cores laterally adjacent to ``core_index``."""
        node = self.node_of(core_index)
        return sorted(self._index[n] for n in self.graph.neighbors(node))

    def steady_state(self, powers) -> np.ndarray:
        """Per-core temperatures (kelvin) for the given power vector (W).

        Solves ``G (T - T_amb) = P``; superposition over the ambient
        reference makes the solve a single linear system.
        """
        powers = np.asarray(powers, dtype=float)
        if powers.shape != (self.n_cores,):
            raise ConfigurationError(
                f"powers must have shape ({self.n_cores},), got {powers.shape}"
            )
        if np.any(powers < 0.0):
            raise ConfigurationError("powers must be non-negative")
        rise = np.linalg.solve(self._conductance, powers)
        temperatures = self.ambient + rise
        guard = self.guard
        if guard.checking:
            # With non-negative powers and a diagonally dominant G, no
            # core can sit below ambient; the upper bound catches NaN/Inf
            # from a singular or corrupted conductance matrix.
            temperatures = guard.check_array(
                "multicore.temperature",
                temperatures,
                self.ambient,
                guard.config.max_temperature,
                tol=1e-9 * self.ambient,
                inputs=lambda: {"ambient": self.ambient},
                arrays=lambda: {"powers": powers, "temperatures": temperatures},
            )
        return temperatures

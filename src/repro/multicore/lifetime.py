"""Multi-core lifetime projection: BTI margins and the EM ledger together.

Extends the scheduler comparison from "who ages least in two weeks" to
"who dies first": the system runs until the worst core's BTI delay shift
eats the timing budget or any core's EM ledger is spent, whichever comes
first.  Because self-healing only touches BTI, schedulers converge to an
EM-limited regime — the quantitative version of the paper's limitation
note, at system level.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.device.electromigration import BlackModel, EmWearState
from repro.errors import ConfigurationError
from repro.multicore.scheduler import Scheduler
from repro.multicore.system import MulticoreSystem
from repro.units import hours


@dataclass(frozen=True)
class MulticoreLifetime:
    """Outcome of a run-to-failure projection.

    ``epochs_survived`` counts completed epochs before a budget death (or
    the horizon); ``limited_by`` is "bti", "em" or "horizon".
    """

    epochs_survived: int
    limited_by: str
    final_worst_bti_shift: float
    final_worst_em_damage: float

    @property
    def survived_horizon(self) -> bool:
        """True when neither budget was exhausted."""
        return self.limited_by == "horizon"


def project_multicore_lifetime(
    system: MulticoreSystem,
    scheduler: Scheduler,
    workload,
    bti_budget: float,
    horizon_epochs: int,
    epoch_duration: float = hours(1.0),
    em_model: BlackModel | None = None,
    em_budget: float = 1.0,
) -> MulticoreLifetime:
    """Run until a budget dies or the horizon ends.

    ``bti_budget`` is the tolerable per-core delay shift (seconds);
    ``em_budget`` the tolerable Miner's-rule damage fraction.  Each core
    gets its own EM ledger charged while it is active at its epoch
    temperature.
    """
    if bti_budget <= 0.0:
        raise ConfigurationError("bti_budget must be positive")
    if not 0.0 < em_budget <= 1.0:
        raise ConfigurationError("em_budget must be in (0, 1]")
    if horizon_epochs <= 0:
        raise ConfigurationError("horizon_epochs must be positive")
    ledgers = [EmWearState(em_model) for __ in range(system.n_cores)]
    for epoch in range(horizon_epochs):
        history = system.run(
            scheduler,
            workload,
            n_epochs=1,
            epoch_duration=epoch_duration,
            epoch_offset=epoch,
        )
        temperatures = history.temperatures[0]
        active = history.active_mask[0]
        for core, ledger in enumerate(ledgers):
            ledger.stress(
                epoch_duration,
                1.0 if active[core] else 0.0,
                float(temperatures[core]),
            )
        worst_bti = float(history.delay_shifts[-1].max())
        worst_em = max(ledger.damage for ledger in ledgers)
        if worst_bti >= bti_budget:
            return MulticoreLifetime(epoch + 1, "bti", worst_bti, worst_em)
        if worst_em >= em_budget:
            return MulticoreLifetime(epoch + 1, "em", worst_bti, worst_em)
    return MulticoreLifetime(
        horizon_epochs,
        "horizon",
        float(system.delay_shifts().max()),
        max(ledger.damage for ledger in ledgers),
    )


def compare_scheduler_lifetimes(
    make_system,
    schedulers: dict[str, Scheduler],
    workload,
    bti_budget: float,
    horizon_epochs: int,
    epoch_duration: float = hours(1.0),
    em_model: BlackModel | None = None,
) -> dict[str, MulticoreLifetime]:
    """Project every scheduler on identically-built systems.

    ``make_system`` is a zero-argument factory so each scheduler starts
    from statistically identical hardware.
    """
    results: dict[str, MulticoreLifetime] = {}
    for name, scheduler in schedulers.items():
        results[name] = project_multicore_lifetime(
            make_system(),
            scheduler,
            workload,
            bti_budget=bti_budget,
            horizon_epochs=horizon_epochs,
            epoch_duration=epoch_duration,
            em_model=em_model,
        )
    return results

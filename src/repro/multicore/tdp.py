"""Dark silicon: TDP-constrained scheduling.

The paper motivates multi-core self-healing with "the future emergence of
dark Silicon" — at fixed power budgets, some cores *must* be off; those
mandatory sleep slots are free healing opportunities.  This module adds
the power-budget layer: a :class:`TdpConstraint` that caps how many cores
may run, and :class:`TdpConstrainedScheduler`, which clamps any inner
scheduler's demand to the budget so the dark cores heal instead of merely
idling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.multicore.scheduler import ScheduleDecision, Scheduler
from repro.multicore.thermal import ThermalGrid


@dataclass(frozen=True)
class TdpConstraint:
    """A package power budget.

    ``max_active_cores`` is derived from the budget and per-core powers:
    the dark-silicon fraction is whatever does not fit.
    """

    budget_watts: float
    active_power: float = 10.0
    sleep_power: float = 0.4

    def __post_init__(self) -> None:
        if self.budget_watts <= 0.0:
            raise ConfigurationError("budget_watts must be positive")
        if self.active_power <= self.sleep_power:
            raise ConfigurationError("active power must exceed sleep power")

    def max_active_cores(self, n_cores: int) -> int:
        """Most cores that can run without busting the budget.

        Every core draws at least sleep power; actives add the difference.
        """
        if n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")
        floor_power = n_cores * self.sleep_power
        headroom = self.budget_watts - floor_power
        if headroom < 0.0:
            return 0
        per_active = self.active_power - self.sleep_power
        return min(n_cores, int(headroom / per_active))

    def dark_fraction(self, n_cores: int) -> float:
        """Fraction of the die that must stay dark under this budget."""
        return 1.0 - self.max_active_cores(n_cores) / n_cores


class TdpConstrainedScheduler:
    """Wrap any scheduler with a TDP clamp.

    The inner scheduler still chooses *which* cores run; the wrapper only
    caps *how many*.  Sleeping cores keep the inner scheduler's sleep
    voltage, so a circadian inner policy turns the dark fraction into
    active healing for free.
    """

    def __init__(self, inner: Scheduler, constraint: TdpConstraint) -> None:
        self.inner = inner
        self.constraint = constraint
        self.clamped_epochs = 0

    @property
    def aging_independent(self) -> bool:
        """The clamp never looks at aging; independence is the inner's."""
        return getattr(self.inner, "aging_independent", False)

    def decide(
        self, epoch: int, demand: int, aging: np.ndarray, grid: ThermalGrid
    ) -> ScheduleDecision:
        """Clamp demand to the budget, then delegate."""
        allowed = self.constraint.max_active_cores(aging.size)
        if demand > allowed:
            self.clamped_epochs += 1
            demand = allowed
        return self.inner.decide(epoch, demand, aging, grid)

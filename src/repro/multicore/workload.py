"""Workload models: how many cores the system must keep active per epoch."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ConstantWorkload:
    """A fixed demand: ``active_cores`` must run every epoch.

    The paper's Fig. 10 snapshot — 6 of 8 cores active, 2 asleep — is
    ``ConstantWorkload(6)`` on a 8-core system.
    """

    def __init__(self, active_cores: int) -> None:
        if active_cores < 0:
            raise ConfigurationError("active_cores must be non-negative")
        self.active_cores = active_cores

    def demand(self, epoch: int) -> int:
        """Cores required during ``epoch``."""
        return self.active_cores


class DiurnalWorkload:
    """Day/night demand swing — the circadian scheduling opportunity.

    Demand alternates between ``peak`` cores for ``day_epochs`` and
    ``trough`` cores for ``night_epochs``; night epochs are when deep
    rejuvenation is cheap.
    """

    def __init__(
        self, peak: int, trough: int, day_epochs: int = 16, night_epochs: int = 8
    ) -> None:
        if peak < trough:
            raise ConfigurationError("peak demand must be >= trough demand")
        if trough < 0:
            raise ConfigurationError("trough must be non-negative")
        if day_epochs <= 0 or night_epochs <= 0:
            raise ConfigurationError("day/night epoch counts must be positive")
        self.peak = peak
        self.trough = trough
        self.day_epochs = day_epochs
        self.night_epochs = night_epochs

    def demand(self, epoch: int) -> int:
        """Cores required during ``epoch``."""
        position = epoch % (self.day_epochs + self.night_epochs)
        return self.peak if position < self.day_epochs else self.trough


class RandomWorkload:
    """Binomially fluctuating demand around a mean utilisation."""

    def __init__(
        self,
        n_cores: int,
        utilisation: float,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        if not 0.0 <= utilisation <= 1.0:
            raise ConfigurationError("utilisation must be within [0, 1]")
        if n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")
        self.n_cores = n_cores
        self.utilisation = utilisation
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng

    def demand(self, epoch: int) -> int:
        """Cores required during ``epoch`` (binomial draw)."""
        return int(self._rng.binomial(self.n_cores, self.utilisation))

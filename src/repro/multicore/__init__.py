"""Multi-core self-healing (paper Sec. 6, Fig. 10).

The paper proposes two multi-core applications of accelerated recovery:
using active neighbour cores as *on-chip heaters* for sleeping cores, and
circadian-rhythm-aware scheduling.  This package implements both as a
working simulation: per-core BTI aging, a thermal RC grid in which active
cores heat their sleeping neighbours, and a family of schedulers from
naive (fixed active set) to heater-aware circadian.
"""

from repro.multicore.core_model import CoreAgingModel, CoreParameters, CoreSegment
from repro.multicore.lifetime import MulticoreLifetime, compare_scheduler_lifetimes, project_multicore_lifetime
from repro.multicore.metrics import SystemMetrics, compute_metrics
from repro.multicore.scheduler import (
    BaselineScheduler,
    CircadianScheduler,
    HeaterAwareScheduler,
    InstrumentedScheduler,
    RoundRobinScheduler,
)
from repro.multicore.system import MulticoreSystem, SystemHistory
from repro.multicore.tdp import TdpConstrainedScheduler, TdpConstraint
from repro.multicore.thermal import ThermalGrid
from repro.multicore.workload import ConstantWorkload, DiurnalWorkload

__all__ = [
    "BaselineScheduler",
    "CircadianScheduler",
    "ConstantWorkload",
    "CoreAgingModel",
    "CoreParameters",
    "CoreSegment",
    "DiurnalWorkload",
    "HeaterAwareScheduler",
    "InstrumentedScheduler",
    "MulticoreSystem",
    "MulticoreLifetime",
    "RoundRobinScheduler",
    "SystemHistory",
    "SystemMetrics",
    "TdpConstrainedScheduler",
    "TdpConstraint",
    "ThermalGrid",
    "compute_metrics",
    "compare_scheduler_lifetimes",
    "project_multicore_lifetime",
]

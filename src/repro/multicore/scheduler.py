"""Core schedulers: from naive fixed mapping to heater-aware circadian.

A scheduler answers one question per epoch: *which* cores run, and what
bias the sleeping cores get.  Four policies ladder up to the paper's
proposal:

* :class:`BaselineScheduler` — fixed active set; sleepers idle at 0 V.
  The paper's implicit status quo: some cores simply age out first.
* :class:`RoundRobinScheduler` — rotates the sleep slots (wear levelling)
  but sleep is still passive inactivity.
* :class:`CircadianScheduler` — rotation plus *active* recovery: sleeping
  cores get the negative rail.
* :class:`HeaterAwareScheduler` — circadian, and additionally chooses the
  sleeping cores to (a) prioritise the most-aged cores and (b) prefer
  sleep slots surrounded by active neighbours, exploiting their heat to
  accelerate recovery (paper Fig. 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.multicore.thermal import ThermalGrid
from repro.obs import get_tracer


@dataclass(frozen=True)
class ScheduleDecision:
    """Active set and sleep bias for one epoch."""

    active: tuple[int, ...]
    sleep_voltage: float


class Scheduler(Protocol):
    """Anything that can pick the active set each epoch.

    Schedulers whose decision depends only on the epoch index and the
    demand — never on the aging state — declare ``aging_independent =
    True``; for constant demand their schedule is periodic, which lets
    :meth:`repro.multicore.system.MulticoreSystem.fast_forward` compress
    whole rotations with the closed-form cycle composition.
    """

    aging_independent: bool = False

    def decide(
        self, epoch: int, demand: int, aging: np.ndarray, grid: ThermalGrid
    ) -> ScheduleDecision:
        """Choose which cores run this epoch."""
        ...


def _check_demand(demand: int, n_cores: int) -> int:
    if demand < 0:
        raise ConfigurationError("demand must be non-negative")
    return min(demand, n_cores)


class BaselineScheduler:
    """Fixed active set: cores 0..demand-1 always run; sleep is passive."""

    aging_independent = True

    def decide(
        self, epoch: int, demand: int, aging: np.ndarray, grid: ThermalGrid
    ) -> ScheduleDecision:
        """Always the lowest-numbered cores."""
        demand = _check_demand(demand, aging.size)
        return ScheduleDecision(active=tuple(range(demand)), sleep_voltage=0.0)


class RoundRobinScheduler:
    """Rotating active window; sleep is passive (0 V) inactivity."""

    aging_independent = True

    def __init__(self, sleep_voltage: float = 0.0) -> None:
        if sleep_voltage > 0.0:
            raise ConfigurationError("sleep voltage must be non-positive")
        self.sleep_voltage = sleep_voltage

    def decide(
        self, epoch: int, demand: int, aging: np.ndarray, grid: ThermalGrid
    ) -> ScheduleDecision:
        """Rotate the active window by one core per epoch."""
        n = aging.size
        demand = _check_demand(demand, n)
        start = epoch % n
        active = tuple(sorted((start + i) % n for i in range(demand)))
        return ScheduleDecision(active=active, sleep_voltage=self.sleep_voltage)


class CircadianScheduler(RoundRobinScheduler):
    """Round-robin rotation with *active* recovery during sleep."""

    def __init__(self, sleep_voltage: float = -0.3) -> None:
        super().__init__(sleep_voltage=sleep_voltage)


class HeaterAwareScheduler:
    """Aging- and heat-aware circadian scheduling (paper Fig. 10).

    Each epoch the most-aged cores are sent to sleep (they need healing
    most); ties and near-ties are broken toward sleep slots with more
    active neighbours, whose waste heat accelerates the healing.

    Parameters
    ----------
    sleep_voltage:
        Bias for sleeping cores (negative for accelerated recovery).
    aging_weight / heat_weight:
        Relative importance of aging level vs neighbour heat when ranking
        sleep candidates.  Aging is normalised by its current maximum.
    """

    # Decisions feed on the aging state, so the schedule is not periodic
    # and cannot be fast-forwarded with the closed-form compression.
    aging_independent = False

    def __init__(
        self,
        sleep_voltage: float = -0.3,
        aging_weight: float = 1.0,
        heat_weight: float = 0.25,
    ) -> None:
        if sleep_voltage > 0.0:
            raise ConfigurationError("sleep voltage must be non-positive")
        if aging_weight < 0.0 or heat_weight < 0.0:
            raise ConfigurationError("weights must be non-negative")
        self.sleep_voltage = sleep_voltage
        self.aging_weight = aging_weight
        self.heat_weight = heat_weight

    def decide(
        self, epoch: int, demand: int, aging: np.ndarray, grid: ThermalGrid
    ) -> ScheduleDecision:
        """Sleep the most-aged cores, preferring well-heated slots.

        The selection is iterative: sleep slots are granted one at a time,
        and the neighbour-heat score counts only cores still slated to be
        active, so two adjacent cores do not both sleep expecting each
        other's heat.
        """
        n = aging.size
        demand = _check_demand(demand, n)
        n_sleepers = n - demand
        active = set(range(n))
        max_aging = float(aging.max()) if aging.size else 0.0
        norm = max_aging if max_aging > 0.0 else 1.0
        for _ in range(n_sleepers):
            best_core = None
            best_score = -np.inf
            for core in sorted(active):
                neighbours = grid.neighbours(core)
                active_neighbours = sum(1 for nb in neighbours if nb in active)
                # Absolute neighbour count (normalised by the grid's max
                # degree): an inner slot with three active neighbours is a
                # better heater site than a corner with two, even though
                # both have "all neighbours active".
                heat = active_neighbours / 4.0
                score = (
                    self.aging_weight * float(aging[core]) / norm
                    + self.heat_weight * heat
                )
                if score > best_score:
                    best_score = score
                    best_core = core
            active.remove(best_core)
        return ScheduleDecision(active=tuple(sorted(active)), sleep_voltage=self.sleep_voltage)


class InstrumentedScheduler:
    """Wraps any scheduler, metering its decisions.

    Counts every :meth:`decide` call and accumulates the wall-clock time
    spent deciding (``multicore.decisions`` / ``multicore.decide_seconds``),
    so scheduler cost shows up in ``repro stats`` next to the simulation
    cost it steers.  The decision itself is passed through untouched.
    """

    def __init__(self, inner: Scheduler, tracer=None) -> None:
        self.inner = inner
        tracer = tracer if tracer is not None else get_tracer()
        self._decisions = tracer.counter(
            "multicore.decisions", "scheduler decide() calls"
        )
        self._decide_seconds = tracer.counter(
            "multicore.decide_seconds", "wall-clock seconds spent in decide()"
        )

    @property
    def aging_independent(self) -> bool:
        """Whether the wrapped scheduler ignores the aging state."""
        return getattr(self.inner, "aging_independent", False)

    def decide(
        self, epoch: int, demand: int, aging: np.ndarray, grid: ThermalGrid
    ) -> ScheduleDecision:
        """Delegate to the wrapped scheduler, recording count and time."""
        start = time.perf_counter()
        decision = self.inner.decide(epoch, demand, aging, grid)
        self._decide_seconds.inc(time.perf_counter() - start)
        self._decisions.inc()
        return decision

"""System-level metrics for scheduler comparison."""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ConfigurationError
from repro.multicore.system import SystemHistory
from repro.units import to_celsius


@dataclass(frozen=True)
class SystemMetrics:
    """Aggregate outcome of a multi-core run.

    ``worst_shift`` drives design margin (the slowest core limits the
    system); ``aging_spread`` is the max-min gap (fairness of wear);
    ``energy_joules`` includes any negative-rail generator overhead;
    ``work_epochs`` is total delivered core-epochs, to confirm schedulers
    are compared at equal work.
    """

    worst_shift: float
    mean_shift: float
    aging_spread: float
    energy_joules: float
    work_epochs: int
    mean_sleep_temperature_c: float


def compute_metrics(history: SystemHistory) -> SystemMetrics:
    """Reduce a :class:`SystemHistory` to scheduler-comparison numbers."""
    final = history.final_shifts()
    sleeping = ~history.active_mask
    if sleeping.any():
        sleep_temp = to_celsius(float(history.temperatures[sleeping].mean()))
    else:
        sleep_temp = float("nan")
    return SystemMetrics(
        worst_shift=float(final.max()),
        mean_shift=float(final.mean()),
        aging_spread=float(final.max() - final.min()),
        energy_joules=history.energy_joules,
        work_epochs=int(history.active_mask.sum()),
        mean_sleep_temperature_c=sleep_temp,
    )


def compare_final_margin(reference: SystemMetrics, candidate: SystemMetrics) -> float:
    """Relative margin improvement of ``candidate`` over ``reference``.

    Positive means the candidate scheduler leaves more timing margin
    (smaller worst-core shift) at end of life.
    """
    if reference.worst_shift <= 0.0:
        raise ConfigurationError("reference run shows no aging to compare against")
    return 1.0 - candidate.worst_shift / reference.worst_shift

"""FIG4 — AC vs DC stress test results (paper Fig. 4).

Frequency degradation over 24 h at 110 degC for the AC-stressed chip 1 and
the DC-stressed chip 2, and the paper's headline observation that AC lands
at about half of DC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments import table1
from repro.experiments.calibration import PAPER_TARGETS
from repro.units import hours


@dataclass(frozen=True)
class Fig4Result:
    """The two degradation series and their 24 h ratio."""

    ac: Series
    dc: Series
    ac_dc_ratio: float

    @property
    def in_band(self) -> bool:
        """True when the ratio lies in the calibration band (~0.5)."""
        return PAPER_TARGETS["ac_dc_ratio"].contains(self.ac_dc_ratio)

    def table(self) -> Table:
        """Hour-marked rows of both curves plus the ratio."""
        table = Table(
            "Fig. 4 — AC vs DC stress (110 degC, freq. degradation %)",
            ["time (h)", "AC stress (%)", "DC stress (%)", "AC/DC"],
        )
        for mark in (3.0, 6.0, 12.0, 24.0):
            ac = self.ac.at(hours(mark))
            dc = self.dc.at(hours(mark))
            table.add_row(f"{mark:.0f}", ac, dc, ac / dc if dc > 0 else float("nan"))
        return table


def run(seed: int = 0) -> Fig4Result:
    """Extract the Fig. 4 series from the shared campaign."""
    result = table1.campaign(seed)
    t_ac, p_ac = result.degradation_percent_series("AS110AC24", chip_no=1)
    t_dc, p_dc = result.degradation_percent_series("AS110DC24", chip_no=2)
    ac = Series("AC stress 110C", t_ac, p_ac, units="%")
    dc = Series("DC stress 110C", t_dc, p_dc, units="%")
    ratio = ac.final / dc.final if dc.final > 0 else float("nan")
    return Fig4Result(ac=ac, dc=dc, ac_dc_ratio=ratio)

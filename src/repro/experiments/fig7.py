"""FIG7 — recovered delay vs time, grouped by voltage (paper Fig. 7).

The same four curves as Fig. 6 regrouped: panel (a) 0 V (20 vs 110 degC),
panel (b) -0.3 V (20 vs 110 degC).  The headline: high temperature
accelerates recovery at both voltages — heat is a healing knob, not only a
wearout accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.experiments import table1
from repro.experiments._recovery import RecoveryCurve, extract
from repro.experiments.fig6 import MARKS_HOURS, _dominates
from repro.units import hours


@dataclass(frozen=True)
class Fig7Result:
    """The four 6 h recovery curves grouped by sleep voltage."""

    panel_0v: tuple[RecoveryCurve, RecoveryCurve]  # (20C, 110C)
    panel_neg: tuple[RecoveryCurve, RecoveryCurve]  # (20C, 110C)

    @property
    def heat_accelerates_at_0v(self) -> bool:
        """RD(110 C) above RD(20 C) at every mark, 0 V panel."""
        return _dominates(self.panel_0v[1], self.panel_0v[0])

    @property
    def heat_accelerates_at_negative(self) -> bool:
        """RD(110 C) above RD(20 C) at every mark, -0.3 V panel."""
        return _dominates(self.panel_neg[1], self.panel_neg[0])

    def table(self) -> Table:
        """Recovered delay (ns) at the marks, grouped by voltage."""
        table = Table(
            "Fig. 7 — recovered delay (ns) under (a) 0 V and (b) -0.3 V",
            ["time (h)", "0V 20C", "0V 110C", "-0.3V 20C", "-0.3V 110C"],
        )
        curves = [*self.panel_0v, *self.panel_neg]
        for mark in MARKS_HOURS:
            t = hours(mark)
            table.add_row(f"{mark:g}", *[c.recovered.at(t) * 1e9 for c in curves])
        return table


def run(seed: int = 0) -> Fig7Result:
    """Extract the Fig. 7 panels from the shared campaign."""
    result = table1.campaign(seed)
    return Fig7Result(
        panel_0v=(extract(result, "R20Z6"), extract(result, "AR110Z6")),
        panel_neg=(extract(result, "AR20N6"), extract(result, "AR110N6")),
    )

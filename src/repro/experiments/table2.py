"""TAB2 — delay change (%) for different temperature conditions.

The paper's Table 2 summarises the Fig. 5 curves at the hour marks; we
report frequency degradation percent at 3/6/12/24 h for 100 and 110 degC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments import table1
from repro.units import hours

MARKS_HOURS = (3.0, 6.0, 12.0, 24.0)


@dataclass(frozen=True)
class Table2Result:
    """Degradation percent per temperature per hour mark."""

    at_110c: Series
    at_100c: Series

    def values(self) -> dict[str, dict[float, float]]:
        """{'110C': {3: ..., ...}, '100C': {...}} degradation percents."""
        return {
            "110C": {m: self.at_110c.at(hours(m)) for m in MARKS_HOURS},
            "100C": {m: self.at_100c.at(hours(m)) for m in MARKS_HOURS},
        }

    def table(self) -> Table:
        """Render the Table 2 analogue."""
        table = Table(
            "Table 2 — delay change (%) vs temperature (DC stress)",
            ["T (degC)"] + [f"{m:.0f} h" for m in MARKS_HOURS],
        )
        values = self.values()
        for temp in ("110C", "100C"):
            table.add_row(temp, *[values[temp][m] for m in MARKS_HOURS])
        return table


def run(seed: int = 0) -> Table2Result:
    """Extract the Table 2 rows from the shared campaign."""
    result = table1.campaign(seed)
    t110, p110 = result.degradation_percent_series("AS110DC24", chip_no=2)
    t100, p100 = result.degradation_percent_series("AS100DC24", chip_no=4)
    return Table2Result(
        at_110c=Series("110C DC", t110, p110, units="%"),
        at_100c=Series("100C DC", t100, p100, units="%"),
    )

"""Shared extraction of recovery curves from the Table-1 campaign.

Figures 6-8 and Tables 4-5 all view the same five recovery cases; this
module extracts a case once — measured delay-change and recovered-delay
series, a fitted Eq. (11) model with validation, and the margin-relaxed
parameter — and the per-figure modules regroup the results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import Series
from repro.bti.firstorder import RecoveryParameters
from repro.core.fitting import FitReport, fit_recovery_parameters
from repro.core.metrics import margin_relaxed_parameter, recovered_delay
from repro.core.validation import ValidationReport, validate_model_against_series
from repro.lab.campaign import CampaignResult
from repro.units import hours

#: case -> (chip number, sleep temperature degC, sleep voltage V, stress hours)
RECOVERY_CASES: dict[str, tuple[int, float, float, float]] = {
    "R20Z6": (2, 20.0, 0.0, 24.0),
    "AR20N6": (3, 20.0, -0.3, 24.0),
    "AR110Z6": (4, 110.0, 0.0, 24.0),
    "AR110N6": (5, 110.0, -0.3, 24.0),
    "AR110N12": (5, 110.0, -0.3, 48.0),
}


@dataclass(frozen=True)
class RecoveryCurve:
    """Everything the recovery figures need about one case."""

    case: str
    chip_no: int
    temperature_c: float
    voltage: float
    stress_time: float
    delay_change: Series  # dTd(t2), anchored at end of stress
    recovered: Series  # RD(t2) = dTd(0) - dTd(t2), paper Eq. (16)
    model: Series  # fitted Eq. (11) residual curve
    fit: FitReport[RecoveryParameters]
    validation: ValidationReport
    margin_relaxed_percent: float


def extract(result: CampaignResult, case: str) -> RecoveryCurve:
    """Build the :class:`RecoveryCurve` for one Table-1 recovery case."""
    chip_no, temp_c, voltage, stress_hours = RECOVERY_CASES[case]
    times, shifts = result.delay_change_series(case, chip_no=chip_no)
    stress_time = hours(stress_hours)
    fit = fit_recovery_parameters(
        stress_time=stress_time,
        shift_at_stress_end=float(shifts[0]),
        times=times,
        shifts=shifts,
    )
    predicted = fit.parameters.residual(float(shifts[0]), stress_time, times)
    label = f"{case} ({temp_c:.0f}C, {voltage:g}V)"
    return RecoveryCurve(
        case=case,
        chip_no=chip_no,
        temperature_c=temp_c,
        voltage=voltage,
        stress_time=stress_time,
        delay_change=Series(label, times, shifts, units="s"),
        recovered=Series(f"RD {label}", times, recovered_delay(times, shifts), units="s"),
        model=Series(f"{label} (model)", times, predicted, units="s"),
        fit=fit,
        validation=validate_model_against_series(shifts, predicted),
        margin_relaxed_percent=margin_relaxed_parameter(times, shifts),
    )


def extract_all(result: CampaignResult) -> dict[str, RecoveryCurve]:
    """All five recovery curves keyed by case name."""
    return {case: extract(result, case) for case in RECOVERY_CASES}

"""FIG3 — ring-oscillator test configuration (paper Fig. 3, Eqs. 14-15).

The paper's Fig. 3 is the measurement chain: a 75-LUT inverter ring with
an enable NAND and a 16-bit counter clocked at fref = 500 Hz.  This runner
instantiates that exact chain (enable-gated), verifies the counter
operating point, and checks the Eq. 14/15 arithmetic end to end,
including the readout resolution against the paper's +/-5-count spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.fpga.chip import FpgaChip
from repro.fpga.counter import ReadoutCounter
from repro.fpga.ring_oscillator import RingOscillator


@dataclass(frozen=True)
class Fig3Result:
    """Operating point of the Fig. 3 measurement chain."""

    fresh_frequency: float
    count: int
    implied_delay: float
    chip_delay: float
    counter: ReadoutCounter

    @property
    def fits_counter(self) -> bool:
        """The operating point stays inside the 16-bit counter."""
        return 0 < self.count < self.counter.max_count

    @property
    def quantisation_resolution(self) -> float:
        """Relative frequency resolution of one counter LSB."""
        return 1.0 / self.count

    @property
    def noise_floor(self) -> float:
        """Relative frequency error of the +/-5-count readout spec."""
        return self.counter.noise_counts / self.count

    @property
    def chain_consistent(self) -> bool:
        """Eq. 15's implied delay matches the chip to counter resolution."""
        return abs(self.implied_delay - self.chip_delay) / self.chip_delay < 2.0 * self.quantisation_resolution

    def table(self) -> Table:
        """Render the operating point."""
        table = Table(
            "Fig. 3 — RO test configuration (75 LUTs + En NAND, 16-bit counter)",
            ["quantity", "value"],
            fmt="{:.4g}",
        )
        table.add_row("fresh fosc (MHz)", self.fresh_frequency / 1e6)
        table.add_row("counter value (fref = 500 Hz)", self.count)
        table.add_row("counter capacity", self.counter.max_count)
        table.add_row("CUT delay via Eq. 15 (ns)", self.implied_delay * 1e9)
        table.add_row("chip path delay (ns)", self.chip_delay * 1e9)
        table.add_row("1-LSB resolution (%)", self.quantisation_resolution * 100)
        table.add_row("+/-5-count noise floor (%)", self.noise_floor * 100)
        return table


def run(seed: int = 0) -> Fig3Result:
    """Instantiate the Fig. 3 chain on a fresh chip and measure it."""
    chip = FpgaChip("fig3", enable_gated=True, seed=seed)
    counter = ReadoutCounter()
    ro = RingOscillator(chip, counter)
    measurement = ro.measure_averaged(5, rng=seed)
    return Fig3Result(
        fresh_frequency=chip.oscillation_frequency(),
        count=measurement.count,
        implied_delay=measurement.delay,
        chip_delay=chip.path_delay(),
        counter=counter,
    )

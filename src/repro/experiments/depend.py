"""DEPEND: the dependability demonstration sweep.

Not a paper artefact — a dependability drill over the paper's recovery
knobs.  The demo sweep (:func:`repro.dependability.spec.demo_spec`) runs
two faultload levels x two guard modes x three alpha settings through the
resilient batch runner, then folds the grid into a
:class:`~repro.dependability.analyzer.SweepAnalysis`: Wilson intervals on
cell-failure and quarantine rates, a bootstrap interval on projected
lifetime, and the lifetime-vs-throughput Pareto frontier over
(alpha, Vdda, Ta).

The guard-off cells under upset faultloads *fail by design* (a NaN trap
upset with no guard clamping it aborts the campaign) — they demonstrate
the graceful-degradation contract: the sweep records them and completes
on the survivors.
"""

from __future__ import annotations

import tempfile

from repro.dependability import SweepRunner, SweepSpec, analyze_sweep, demo_spec
from repro.dependability.analyzer import SweepAnalysis


def run(seed: int | None = None, spec: SweepSpec | None = None) -> SweepAnalysis:
    """Run the demo sweep inline in a scratch directory and analyze it.

    ``seed`` replaces the spec's seed axis (the registry forwards the CLI
    ``--seed``); inline isolation keeps the demo fast — the process
    isolation and timeout paths are exercised by the smoke benchmark and
    the test suite instead.
    """
    sweep = spec if spec is not None else demo_spec()
    if seed is not None:
        sweep = SweepSpec.from_dict({**sweep.to_dict(), "seeds": [seed]})
    with tempfile.TemporaryDirectory(prefix="repro-depend-") as scratch:
        runner = SweepRunner(sweep, scratch, isolation="inline")
        result = runner.run()
        return analyze_sweep(result)

"""FIG8 — delay change over time during recovery, all four conditions.

The paper's Fig. 8 overlays the measured dTd trajectories of the four
6 h recovery cases with their model curves; the combined knob case
(110 degC, -0.3 V) recovers fastest and deepest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.experiments import table1
from repro.experiments._recovery import RecoveryCurve, extract
from repro.units import hours

#: Panel order: worst to best recovery per the paper's legend.
CASE_ORDER = ("R20Z6", "AR20N6", "AR110Z6", "AR110N6")


@dataclass(frozen=True)
class Fig8Result:
    """All four recovery trajectories with model fits."""

    curves: dict[str, RecoveryCurve]

    @property
    def combined_knobs_win(self) -> bool:
        """(110 C, -0.3 V) ends with the lowest residual delay change."""
        finals = {case: c.delay_change.final for case, c in self.curves.items()}
        return finals["AR110N6"] == min(finals.values())

    @property
    def ordering_holds(self) -> bool:
        """Residuals ordered: R20Z6 > AR20N6 > AR110Z6 > AR110N6 (relative).

        Compared on recovery fraction to remove chip-to-chip differences
        in the stressed starting level.
        """
        fractions = [
            self.curves[case].margin_relaxed_percent for case in CASE_ORDER
        ]
        return all(a < b for a, b in zip(fractions, fractions[1:]))

    @property
    def models_validate(self) -> bool:
        """Every fitted model curve passes the NRMSE threshold."""
        return all(curve.validation.passed for curve in self.curves.values())

    def table(self) -> Table:
        """dTd (ns) during recovery: measured and model at hour marks."""
        table = Table(
            "Fig. 8 — delay change (ns) during 6 h recovery, measured | model",
            ["time (h)"] + [f"{c}" for c in CASE_ORDER],
        )
        for mark in (0.0, 0.3, 1.0, 2.0, 4.0, 6.0):
            t = hours(mark)
            cells = []
            for case in CASE_ORDER:
                curve = self.curves[case]
                cells.append(
                    f"{curve.delay_change.at(t) * 1e9:.2f} | {curve.model.at(t) * 1e9:.2f}"
                )
            table.add_row(f"{mark:g}", *cells)
        return table


def run(seed: int = 0) -> Fig8Result:
    """Extract the Fig. 8 trajectories from the shared campaign."""
    result = table1.campaign(seed)
    return Fig8Result(curves={case: extract(result, case) for case in CASE_ORDER})

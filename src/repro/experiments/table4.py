"""TAB4 — design margin relaxed per recovery condition (paper Table 4).

The paper defines the design-margin-relaxed parameter as how much the chip
recovered from the original margin, reports it per recovery condition, and
highlights 72.4 % for the combined-knob case AR110N6 — recovering in 1/4
of the stress time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.experiments import table1
from repro.experiments._recovery import extract
from repro.experiments.calibration import PAPER_TARGETS

CASES = ("R20Z6", "AR20N6", "AR110Z6", "AR110N6")

#: The paper only quotes the AR110N6 number explicitly.
PAPER_VALUES = {"AR110N6": "72.4", "R20Z6": "-", "AR20N6": "-", "AR110Z6": "-"}


@dataclass(frozen=True)
class Table4Result:
    """Margin-relaxed parameter (percent) per recovery condition."""

    margin_relaxed: dict[str, float]

    @property
    def all_in_band(self) -> bool:
        """Every case inside its calibration acceptance band."""
        return all(
            PAPER_TARGETS[f"margin_relaxed_{case}"].contains(value)
            for case, value in self.margin_relaxed.items()
        )

    @property
    def combined_knobs_highest(self) -> bool:
        """AR110N6 relaxes the margin most, as the paper reports."""
        return self.margin_relaxed["AR110N6"] == max(self.margin_relaxed.values())

    def table(self) -> Table:
        """Render the Table 4 analogue with the paper's quoted value."""
        table = Table(
            "Table 4 — design margin relaxed parameter (%), recovery in t1/4",
            ["case", "T (degC)", "V (V)", "paper (%)", "measured (%)", "in band"],
            fmt="{:.1f}",
        )
        conditions = {
            "R20Z6": (20, 0.0),
            "AR20N6": (20, -0.3),
            "AR110Z6": (110, 0.0),
            "AR110N6": (110, -0.3),
        }
        for case in CASES:
            temp, volt = conditions[case]
            value = self.margin_relaxed[case]
            in_band = PAPER_TARGETS[f"margin_relaxed_{case}"].contains(value)
            table.add_row(case, temp, f"{volt:g}", PAPER_VALUES[case], value, in_band)
        return table


def run(seed: int = 0) -> Table4Result:
    """Compute the margin-relaxed parameter for every 6 h recovery case."""
    result = table1.campaign(seed)
    return Table4Result(
        margin_relaxed={
            case: extract(result, case).margin_relaxed_percent for case in CASES
        }
    )

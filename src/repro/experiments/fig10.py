"""FIG10 — multi-core self-healing (paper Fig. 10 and Sec. 6.2).

The paper sketches an 8-core system where sleeping cores 3 and 7 are
heated by active neighbours and proposes circadian-aware scheduling.  This
experiment makes the sketch quantitative: four schedulers run the same
workload on the same 2 x 4 core grid, and the end-of-life worst-core delay
shift, wear spread, sleep temperature and energy are compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.multicore.metrics import SystemMetrics, compute_metrics
from repro.multicore.scheduler import (
    BaselineScheduler,
    CircadianScheduler,
    HeaterAwareScheduler,
    RoundRobinScheduler,
)
from repro.multicore.system import MulticoreSystem
from repro.multicore.thermal import ThermalGrid
from repro.multicore.workload import ConstantWorkload
from repro.units import hours

SCHEDULERS = ("baseline", "round-robin", "circadian", "heater-aware")


def _make_scheduler(name: str):
    if name == "baseline":
        return BaselineScheduler()
    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "circadian":
        return CircadianScheduler()
    if name == "heater-aware":
        return HeaterAwareScheduler()
    raise ValueError(f"unknown scheduler {name!r}")


@dataclass(frozen=True)
class Fig10Result:
    """Per-scheduler system metrics on identical hardware and workload."""

    metrics: dict[str, SystemMetrics]
    neighbour_heating_c: float  # sleeping-core rise above ambient (degC)

    @property
    def ladder_holds(self) -> bool:
        """Worst-core aging improves monotonically up the scheduler ladder."""
        worst = [self.metrics[name].worst_shift for name in SCHEDULERS]
        return all(a > b for a, b in zip(worst, worst[1:]))

    @property
    def heater_aware_margin_gain(self) -> float:
        """Relative worst-core margin gain of heater-aware over baseline."""
        base = self.metrics["baseline"].worst_shift
        best = self.metrics["heater-aware"].worst_shift
        return 1.0 - best / base if base > 0 else 0.0

    @property
    def energy_overhead(self) -> float:
        """Energy cost of the negative rail vs the passive baseline."""
        base = self.metrics["baseline"].energy_joules
        best = self.metrics["heater-aware"].energy_joules
        return best / base - 1.0 if base > 0 else 0.0

    def table(self) -> Table:
        """Scheduler comparison table."""
        table = Table(
            "Fig. 10 — multi-core self-healing: scheduler comparison "
            "(8 cores, 6 active, equal delivered work)",
            ["scheduler", "worst dTd (ps)", "mean dTd (ps)", "spread (ps)",
             "sleep T (degC)", "energy (kWh)", "work (core-epochs)"],
            fmt="{:.2f}",
        )
        for name in SCHEDULERS:
            m = self.metrics[name]
            table.add_row(
                name,
                m.worst_shift * 1e12,
                m.mean_shift * 1e12,
                m.aging_spread * 1e12,
                m.mean_sleep_temperature_c,
                m.energy_joules / 3.6e6,
                m.work_epochs,
            )
        return table


def run(
    seed: int = 0,
    n_epochs: int = 24 * 14,
    epoch_duration: float = hours(1.0),
    active_cores: int = 6,
) -> Fig10Result:
    """Run the scheduler ladder on identical systems.

    Every scheduler gets a system built from the same seed, so the cores'
    trap populations are statistically identical across runs.
    """
    metrics: dict[str, SystemMetrics] = {}
    for name in SCHEDULERS:
        system = MulticoreSystem(seed=seed)
        history = system.run(
            _make_scheduler(name),
            ConstantWorkload(active_cores),
            n_epochs=n_epochs,
            epoch_duration=epoch_duration,
        )
        metrics[name] = compute_metrics(history)
    # Quantify the on-chip heater effect on the paper's Fig. 10 snapshot:
    # cores 2 and 6 (0-indexed) asleep, surrounded by active neighbours.
    grid = ThermalGrid()
    powers = np.array(
        [
            0.4 if i in (2, 6) else 10.0
            for i in range(grid.n_cores)
        ]
    )
    temps = grid.steady_state(powers)
    heating = float(temps[[2, 6]].mean() - grid.ambient)
    return Fig10Result(metrics=metrics, neighbour_heating_c=heating)

"""FIG1 — behavioural illustration of stress and recovery (paper Fig. 1).

Two stress/recovery cycles of the first-order device model, showing the
saw-tooth with incomplete recovery: the unrecovered part of dVth carries
into the next stress phase and accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import Series
from repro.bti.firstorder import FirstOrderBtiModel
from repro.errors import ConfigurationError
from repro.experiments.calibration import ILLUSTRATIVE_FIRST_ORDER
from repro.units import hours


@dataclass(frozen=True)
class Fig1Result:
    """The saw-tooth trace plus its cycle peaks and troughs."""

    trace: Series
    peaks: np.ndarray
    troughs: np.ndarray

    @property
    def residual_accumulates(self) -> bool:
        """True when each trough sits above the previous one (Fig. 1's point)."""
        return bool(np.all(np.diff(self.troughs) > 0.0)) if self.troughs.size > 1 else False


def run(
    model: FirstOrderBtiModel | None = None,
    stress_time: float = hours(24.0),
    sleep_time: float = hours(6.0),
    n_cycles: int = 3,
    points_per_phase: int = 60,
) -> Fig1Result:
    """Generate the Fig. 1 behavioural trace.

    The composition uses the effective-stress-time splice: each cycle's
    stress resumes from the residue the previous sleep left behind.
    """
    if n_cycles <= 0 or points_per_phase <= 1:
        raise ConfigurationError("n_cycles and points_per_phase must be positive")
    model = model or ILLUSTRATIVE_FIRST_ORDER
    times: list[float] = [0.0]
    values: list[float] = [0.0]
    peaks = []
    troughs = []
    wall = 0.0
    residue = 0.0
    for _ in range(n_cycles):
        t_eq = model.stress.effective_stress_time(residue)
        grid = np.linspace(0.0, stress_time, points_per_phase)[1:]
        shifts = np.asarray(model.stress.shift(t_eq + grid))
        times.extend(wall + grid)
        values.extend(shifts)
        wall += stress_time
        peak = float(shifts[-1])
        peaks.append(peak)
        total_stress = t_eq + stress_time
        grid = np.linspace(0.0, sleep_time, points_per_phase)[1:]
        residuals = np.asarray(
            model.recovery.residual(peak, total_stress, grid)
        )
        times.extend(wall + grid)
        values.extend(residuals)
        wall += sleep_time
        residue = max(float(residuals[-1]), 0.0)
        troughs.append(residue)
    trace = Series("dVth behavioural trace", np.array(times), np.array(values), units="V")
    return Fig1Result(trace=trace, peaks=np.array(peaks), troughs=np.array(troughs))

"""FIG5 — accelerated wearout at 100/110 degC, measurement vs model.

Reproduces the paper's Fig. 5: measured delay-change curves for 24 h DC
stress at both temperatures with the fitted first-order model (Eq. 10)
overlaid, and quantified model agreement instead of a visual overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.bti.firstorder import StressParameters
from repro.core.fitting import FitReport, fit_stress_parameters
from repro.core.validation import ValidationReport, validate_model_against_series
from repro.experiments import table1
from repro.units import hours


@dataclass(frozen=True)
class WearoutCurve:
    """One temperature's measured curve, model fit and validation."""

    measured: Series
    model: Series
    fit: FitReport[StressParameters]
    validation: ValidationReport


@dataclass(frozen=True)
class Fig5Result:
    """Both temperatures of Fig. 5."""

    at_110c: WearoutCurve
    at_100c: WearoutCurve

    @property
    def hotter_wears_faster(self) -> bool:
        """The headline ordering: 110 degC above 100 degC at every mark."""
        marks = [hours(h) for h in (3.0, 6.0, 12.0, 24.0)]
        return all(
            self.at_110c.measured.at(m) > self.at_100c.measured.at(m) for m in marks
        )

    def table(self) -> Table:
        """Measured vs model delay change (ns) at the paper's hour marks."""
        table = Table(
            "Fig. 5 — accelerated wearout, measured vs model (delay change, ns)",
            ["time (h)", "110C meas", "110C model", "100C meas", "100C model"],
        )
        for mark in (3.0, 6.0, 12.0, 24.0):
            t = hours(mark)
            table.add_row(
                f"{mark:.0f}",
                self.at_110c.measured.at(t) * 1e9,
                self.at_110c.model.at(t) * 1e9,
                self.at_100c.measured.at(t) * 1e9,
                self.at_100c.model.at(t) * 1e9,
            )
        return table


def _curve(times, delays, label: str) -> WearoutCurve:
    measured = Series(label, times, delays, units="s")
    fit = fit_stress_parameters(times, delays)
    predicted = fit.parameters.shift(times)
    model = Series(f"{label} (model)", times, predicted, units="s")
    validation = validate_model_against_series(delays, predicted)
    return WearoutCurve(measured=measured, model=model, fit=fit, validation=validation)


def run(seed: int = 0) -> Fig5Result:
    """Fit and validate the Fig. 5 curves from the shared campaign."""
    result = table1.campaign(seed)
    t110, d110 = result.delay_change_series("AS110DC24", chip_no=2)
    t100, d100 = result.delay_change_series("AS100DC24", chip_no=4)
    return Fig5Result(
        at_110c=_curve(t110, d110, "110C DC stress"),
        at_100c=_curve(t100, d100, "100C DC stress"),
    )

"""TAB5 — active:sleep ratio invariance (paper Table 5).

AR110N6 (24 h stress, 6 h recovery) and AR110N12 (48 h stress, 12 h
recovery) share alpha = 4 but differ in absolute durations; the paper
reports the *same* design-margin-relaxed parameter for both, concluding
that tuning the ratio and sleep conditions — not absolute times — sets the
relaxed margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.experiments import table1
from repro.experiments._recovery import extract
from repro.experiments.calibration import PAPER_TARGETS


@dataclass(frozen=True)
class Table5Result:
    """Margin relaxed for the two alpha = 4 schedules."""

    short_schedule_percent: float  # AR110N6
    long_schedule_percent: float  # AR110N12

    @property
    def gap_points(self) -> float:
        """Absolute gap between the two parameters, percentage points."""
        return abs(self.long_schedule_percent - self.short_schedule_percent)

    @property
    def ratio_invariance_holds(self) -> bool:
        """True when the gap is inside the calibration band (a few points)."""
        return PAPER_TARGETS["alpha_invariance_gap_points"].contains(self.gap_points)

    def table(self) -> Table:
        """Render the Table 5 analogue."""
        table = Table(
            "Table 5 — margin relaxed (%) at alpha = 4, different absolute times",
            ["case", "stress (h)", "sleep (h)", "alpha", "margin relaxed (%)"],
            fmt="{:.1f}",
        )
        table.add_row("AR110N6", 24, 6, 4, self.short_schedule_percent)
        table.add_row("AR110N12", 48, 12, 4, self.long_schedule_percent)
        return table


def run(seed: int = 0) -> Table5Result:
    """Compare the two alpha = 4 schedules from the shared campaign."""
    result = table1.campaign(seed)
    return Table5Result(
        short_schedule_percent=extract(result, "AR110N6").margin_relaxed_percent,
        long_schedule_percent=extract(result, "AR110N12").margin_relaxed_percent,
    )

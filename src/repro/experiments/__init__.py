"""Experiment runners — one module per paper table/figure.

Each module exposes a ``run(...)`` function returning a result object with
the series/rows the paper reports, plus a ``table()`` (or ``tables()``)
rendering helper used by the benchmark harness.  The registry maps
experiment ids (``FIG4``, ``TAB4``, ...) to their runners; see DESIGN.md
for the full index.
"""

from repro.experiments.registry import EXPERIMENTS, ExperimentDescriptor, get_experiment

__all__ = ["EXPERIMENTS", "ExperimentDescriptor", "get_experiment"]

"""TAB1 — the paper's Table 1 campaign (test-case schedule).

Provides the shared campaign run every measurement-based experiment reads
from (cached per seed: chips 1-5 go through burn-in, their stress case and
their recovery case exactly once), plus a rendering of the schedule table
itself.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.tables import Table
from repro.lab.campaign import CampaignResult, run_table1_campaign
from repro.lab.schedule import TABLE1_CASES, parse_case_name, PhaseKind
from repro.units import to_hours


@lru_cache(maxsize=4)
def campaign(seed: int = 0) -> CampaignResult:
    """The shared Table-1 campaign for ``seed`` (cached; treat read-only).

    Experiments that need follow-up simulation must build their own chips;
    mutating the cached chips would corrupt every other experiment.
    """
    return run_table1_campaign(seed=seed)


def schedule_table() -> Table:
    """Render the paper's Table 1 (test cases for wearout & self-healing)."""
    table = Table(
        "Table 1. Test cases for Accelerated Wearout and Self-Healing",
        ["Phase", "Case No.", "Chip No.", "T (degC)", "Voltage (V)",
         "Time (h)", "Switching", "Active/Sleep"],
    )
    for group, name, chip_no in TABLE1_CASES:
        phase = parse_case_name(name)
        if phase.kind is PhaseKind.STRESS:
            switching = phase.mode.value.upper()
            ratio = "-"
        else:
            switching = "-"
            ratio = "4"
        table.add_row(
            group,
            name,
            chip_no,
            f"{phase.temperature_c:.0f}",
            f"{phase.supply_voltage:g}",
            f"{to_hours(phase.duration):.0f}",
            switching,
            ratio,
        )
    return table


def run(seed: int = 0) -> CampaignResult:
    """Execute (or fetch) the campaign — the TAB1 experiment runner."""
    return campaign(seed)

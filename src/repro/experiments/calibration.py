"""Calibration of the virtual silicon against the paper's measurements.

The trap-ensemble defaults in :class:`repro.bti.traps.TrapParameters` and
the technology constants in :data:`repro.device.technology.TECH_40NM` were
calibrated (see DESIGN.md) so the *measured* behaviour of the virtual lab
— including the readout bursts' fast-recovery measurement artifact that
real BTI experiments also contain — lands on the paper's reported shapes:

========================  ================  =======================
quantity                   paper             calibration target
========================  ================  =======================
DC degradation, 24 h 110C  ~2.3 %            2.2 - 2.5 %
AC/DC degradation ratio    "about half"      0.45 - 0.65
110C vs 100C at 24 h       visible gap       1.15 - 1.30x
growth 3 h -> 24 h         fast then slower  1.6 - 2.0x
margin relaxed AR110N6     72.4 %            68 - 78 %
ordering of recovery       Z20 < N20 <       strict ordering
                           Z110 < N110
recovery in t2 = t1/4      "significant"     per-case bands below
========================  ================  =======================

``PAPER_TARGETS`` makes the bands machine-checkable; the calibration test
suite and the benchmark assertions both read them from here so there is a
single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bti.firstorder import (
    FirstOrderBtiModel,
    RecoveryParameters,
    StressParameters,
)


@dataclass(frozen=True)
class Band:
    """An acceptance band for a calibrated quantity."""

    low: float
    high: float
    paper_value: str

    def contains(self, value: float) -> bool:
        """True when ``value`` falls inside the band (inclusive)."""
        return self.low <= value <= self.high


#: Acceptance bands for the headline measured quantities.
PAPER_TARGETS: dict[str, Band] = {
    # Frequency degradation after 24 h accelerated DC stress at 110 degC.
    "dc_degradation_percent_110": Band(1.9, 2.8, "~2.3 %"),
    # AC-to-DC degradation ratio at 24 h ("about half").
    "ac_dc_ratio": Band(0.40, 0.70, "~0.5"),
    # Degradation ratio 110 degC / 100 degC at 24 h.
    "temp_ratio_110_over_100": Band(1.10, 1.35, ">1 (Fig. 5 gap)"),
    # Degradation growth from 3 h to 24 h at 110 degC DC.
    "growth_24h_over_3h": Band(1.5, 2.2, "fast then slower"),
    # Margin-relaxed parameter (recovery fraction, %) per Table-1 case.
    "margin_relaxed_R20Z6": Band(8.0, 28.0, "lowest (passive)"),
    "margin_relaxed_AR20N6": Band(25.0, 52.0, "negative V helps at 20 C"),
    "margin_relaxed_AR110Z6": Band(45.0, 68.0, "high T helps at 0 V"),
    "margin_relaxed_AR110N6": Band(64.0, 84.0, "72.4 %"),
    # Table 5: AR110N12 within a few points of AR110N6 (alpha invariance).
    "alpha_invariance_gap_points": Band(0.0, 10.0, "same parameter"),
}


#: Representative first-order parameters for illustration figures (Fig. 1)
#: — the magnitude of a device-level dVth trace in volts.  Fitted values
#: for the delay-level model come from :mod:`repro.core.fitting` at run
#: time; these constants exist so behavioural illustrations do not depend
#: on a simulation run.
ILLUSTRATIVE_FIRST_ORDER = FirstOrderBtiModel(
    stress=StressParameters(prefactor=2.4e-3, offset_a=0.05, rate_c=2.0e-4),
    recovery=RecoveryParameters(
        prefactor=1.5e-4, offset_a=0.05, rate_c=2.0e-4, k1=0.9, k2=1.6
    ),
)


def check_value(name: str, value: float) -> bool:
    """True when a measured quantity falls in its calibration band."""
    return PAPER_TARGETS[name].contains(value)

"""TAB1F — the Table 1 campaign scaled to a wafer lot (fleet engine).

The paper measured five physical chips; this experiment tiles the same
five-row schedule across a virtual lot (default 1,000 chips, ``repro
campaign --fleet 10000`` for the full wafer-scale run) through the
batched struct-of-arrays engine and reports the population statistics
the five-chip run cannot show: the spread of stress degradation and
post-recovery residuals across process variation, and the outlier
chips beyond the 3-sigma fence of their schedule group.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.tables import Table
from repro.lab.fleet import FleetCampaignResult, run_fleet_campaign

#: Default lot size: large enough for stable tail percentiles, small
#: enough that `repro run TAB1F` finishes in interactive time.
DEFAULT_CHIPS = 1000


@lru_cache(maxsize=2)
def campaign(seed: int = 0, n_chips: int = DEFAULT_CHIPS) -> FleetCampaignResult:
    """The shared fleet campaign for ``seed`` (cached; treat read-only)."""
    return run_fleet_campaign(
        seed=seed, n_chips=n_chips, fidelity="auto", collect="summary"
    )


def distribution_table(result: FleetCampaignResult) -> Table:
    """Population statistics per Table 1 schedule position."""
    table = Table(
        f"Fleet degradation distribution ({len(result.summaries):,} chips, "
        f"fidelity {result.fidelity})",
        ["Chip No.", "n", "stress mean %", "stress std %", "stress p99 %",
         "residual mean %", "residual p99 %"],
        fmt="{:.3f}",
    )
    by_no: dict[int, list] = {}
    for chip in result.summaries:
        by_no.setdefault(chip.chip_no, []).append(chip)
    for chip_no in sorted(by_no):
        stress = np.array([c.stress_degradation_pct for c in by_no[chip_no]])
        residual = np.array([c.residual_degradation_pct for c in by_no[chip_no]])
        table.add_row(
            chip_no,
            len(stress),
            float(stress.mean()),
            float(stress.std(ddof=1)) if len(stress) > 1 else 0.0,
            float(np.percentile(stress, 99.0)),
            float(residual.mean()),
            float(np.percentile(residual, 99.0)),
        )
    return table


def run(seed: int = 0, n_chips: int = DEFAULT_CHIPS) -> FleetCampaignResult:
    """Execute (or fetch) the fleet campaign — the TAB1F runner."""
    return campaign(seed, n_chips)

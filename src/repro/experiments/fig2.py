"""FIG2 — pass-transistor LUT structure and stress mapping (paper Fig. 2).

The paper's Fig. 2 is structural: the generic PT-based 2-input LUT and
the observation (via the inverter example) that the stressed transistor
set is input-dependent but, under DC, constant — Hypothesis 1.  This
runner enumerates the structure: the transistor inventory, and for every
input vector of the paper's inverter configuration the stressed set and
the conducting path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.fpga.lut import INVERTER_ON_IN0, PassTransistorLut


@dataclass(frozen=True)
class Fig2Result:
    """Structure and stress mapping of the inverter-configured LUT."""

    lut: PassTransistorLut

    @property
    def paper_example_holds(self) -> bool:
        """The paper's worked example (In1 = 1, config = inverter).

        In0 = 1 stresses the conducting level-1/level-2 passes (our M1,
        M5); In0 = 0 stresses only the buffer device driven by the weak 1
        (the paper's "only M7", our M8).  See DESIGN.md for the naming
        note.
        """
        high = self.lut.stressed_fractions(1, 1)
        low = self.lut.stressed_fractions(0, 1)
        on_path_high = set(high) & set(self.lut.conducting_path(1, 1))
        return on_path_high == {"M1", "M5", "M7"} and set(low) == {"M8"}

    @property
    def hypothesis2_off_path_has_no_delay_weight(self) -> bool:
        """Recovery of never-conducting devices cannot move the delay."""
        from repro.device.technology import TECH_40NM
        from repro.fpga.netlist import InverterChainNetlist

        netlist = InverterChainNetlist(n_stages=3)
        weights = netlist.delay_weights(TECH_40NM)
        return all(
            weights[netlist.owner_index(0, name)] == 0.0
            for name in ("M3", "M4", "M6")
        )

    def inventory_table(self) -> Table:
        """The eight transistors of the LUT."""
        table = Table(
            "Fig. 2 — pass-transistor LUT inventory",
            ["name", "type", "role", "delay share", "stress fraction"],
            fmt="{:.2f}",
        )
        for t in self.lut.transistors:
            table.add_row(
                t.name,
                "PMOS" if t.is_pmos else "NMOS",
                t.role.value,
                t.delay_weight,
                t.stress_fraction,
            )
        return table

    def stress_table(self) -> Table:
        """Stressed set and POI per input vector (inverter config)."""
        table = Table(
            "Fig. 2 — stress mapping of the inverter configuration",
            ["(In0, In1)", "output", "stressed", "conducting path"],
        )
        for in1 in (0, 1):
            for in0 in (0, 1):
                stressed = self.lut.stressed_fractions(in0, in1)
                table.add_row(
                    f"({in0}, {in1})",
                    self.lut.evaluate(in0, in1),
                    ", ".join(sorted(stressed)) or "-",
                    " -> ".join(self.lut.conducting_path(in0, in1)),
                )
        return table

    def table(self) -> Table:
        """Default rendering (the stress mapping)."""
        return self.stress_table()


def run() -> Fig2Result:
    """Build the Fig. 2 structural result."""
    return Fig2Result(lut=PassTransistorLut(INVERTER_ON_IN0))

"""Registry mapping experiment ids to paper artefacts and runners."""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs import get_tracer
from repro.experiments import (
    depend,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table1_fleet,
    table2,
    table3,
    table4,
    table5,
)


@dataclass(frozen=True)
class ExperimentDescriptor:
    """One reproducible paper artefact.

    ``runner`` regenerates the artefact's data; ``bench`` names the
    pytest-benchmark target that prints it.
    """

    exp_id: str
    paper_artifact: str
    description: str
    runner: Callable
    bench: str


EXPERIMENTS: dict[str, ExperimentDescriptor] = {
    d.exp_id: d
    for d in (
        ExperimentDescriptor(
            "FIG1",
            "Figure 1",
            "Behavioural illustration of stress and recovery",
            fig1.run,
            "benchmarks/bench_fig1_behavioral.py",
        ),
        ExperimentDescriptor(
            "FIG2",
            "Figure 2",
            "Pass-transistor LUT structure and its stress mapping",
            fig2.run,
            "benchmarks/bench_fig2_lut_structure.py",
        ),
        ExperimentDescriptor(
            "FIG3",
            "Figure 3",
            "RO test configuration: 75 LUTs + En NAND + 16-bit counter",
            fig3.run,
            "benchmarks/bench_fig3_test_configuration.py",
        ),
        ExperimentDescriptor(
            "TAB1",
            "Table 1",
            "Test-case schedule: 5 chips, accelerated stress + recovery",
            table1.run,
            "benchmarks/bench_table1_campaign.py",
        ),
        ExperimentDescriptor(
            "TAB1F",
            "Table 1 (fleet)",
            "Table 1 schedule tiled over a wafer lot: degradation "
            "distributions and outlier chips",
            table1_fleet.run,
            "benchmarks/bench_fleet_campaign.py",
        ),
        ExperimentDescriptor(
            "FIG4",
            "Figure 4",
            "AC vs DC stress: AC degradation about half of DC",
            fig4.run,
            "benchmarks/bench_fig4_ac_dc_stress.py",
        ),
        ExperimentDescriptor(
            "FIG5",
            "Figure 5",
            "Accelerated wearout at 100/110 degC, measured vs model",
            fig5.run,
            "benchmarks/bench_fig5_wearout.py",
        ),
        ExperimentDescriptor(
            "TAB2",
            "Table 2",
            "Delay change (%) for different temperature conditions",
            table2.run,
            "benchmarks/bench_table2_delay_change.py",
        ),
        ExperimentDescriptor(
            "TAB3",
            "Table 3",
            "Extracted first-order model parameters",
            table3.run,
            "benchmarks/bench_table3_parameters.py",
        ),
        ExperimentDescriptor(
            "FIG6",
            "Figure 6",
            "Recovery at 20/110 degC: negative voltage accelerates",
            fig6.run,
            "benchmarks/bench_fig6_recovery_voltage.py",
        ),
        ExperimentDescriptor(
            "FIG7",
            "Figure 7",
            "Recovery at 0/-0.3 V: high temperature accelerates",
            fig7.run,
            "benchmarks/bench_fig7_recovery_temperature.py",
        ),
        ExperimentDescriptor(
            "FIG8",
            "Figure 8",
            "Delay change during recovery, four conditions + model",
            fig8.run,
            "benchmarks/bench_fig8_recovery_trajectories.py",
        ),
        ExperimentDescriptor(
            "TAB4",
            "Table 4",
            "Design margin relaxed per recovery condition (72.4 % headline)",
            table4.run,
            "benchmarks/bench_table4_margin_relaxed.py",
        ),
        ExperimentDescriptor(
            "TAB5",
            "Table 5",
            "Active:sleep ratio invariance (alpha = 4)",
            table5.run,
            "benchmarks/bench_table5_alpha_ratio.py",
        ),
        ExperimentDescriptor(
            "DEPEND",
            "Dependability sweep",
            "Faultload matrix with graceful degradation: failure-rate "
            "intervals and the recovery-knob Pareto frontier",
            depend.run,
            "benchmarks/smoke_sweep.py",
        ),
        ExperimentDescriptor(
            "FIG9",
            "Figure 9",
            "Wearout vs accelerated recovery over periodic cycles",
            fig9.run,
            "benchmarks/bench_fig9_circadian_cycles.py",
        ),
        ExperimentDescriptor(
            "FIG10",
            "Figure 10",
            "Multi-core self-healing: scheduler ladder + on-chip heaters",
            fig10.run,
            "benchmarks/bench_fig10_multicore.py",
        ),
    )
}


def get_experiment(exp_id: str) -> ExperimentDescriptor:
    """Look up an experiment by id (e.g. ``"FIG4"``)."""
    try:
        return EXPERIMENTS[exp_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id: str, seed: int | None = None, tracer=None):
    """Run one experiment inside an ``experiment`` span.

    ``seed`` is forwarded only to runners that accept one (structural
    figures take no seed).  The span records the experiment id and the
    ``experiments.runs`` counter ticks once per invocation, so a traced
    ``repro report`` shows where its wall-clock went.
    """
    descriptor = get_experiment(exp_id)
    tracer = tracer if tracer is not None else get_tracer()
    takes_seed = "seed" in inspect.signature(descriptor.runner).parameters
    with tracer.span(
        "experiment", exp_id=descriptor.exp_id, artifact=descriptor.paper_artifact
    ):
        tracer.counter("experiments.runs", "experiment runners invoked").inc()
        if takes_seed and seed is not None:
            return descriptor.runner(seed=seed)
        return descriptor.runner()

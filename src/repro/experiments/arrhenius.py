"""Arrhenius study: multi-temperature campaign, Ea extraction, projection.

The reason accelerated testing exists at all: stress hot, extract the
temperature law, project to use conditions over product life.  The paper
runs two temperatures (Fig. 5); this study generalises the methodology —

1. DC-stress identical virtual chips at several temperatures;
2. fit the first-order stress form per temperature (Eq. 10);
3. extract the activation energy from the fitted rate constants C(T) —
   for log-like TD aging, temperature shifts the curve along log-time
   (time-temperature superposition), so the thermal law lives in C, not
   in the per-decade slope beta;
4. hold one temperature out: the scaling fitted on the others must
   predict its whole curve (the validation the two-point paper cannot do);
5. extrapolate to a use condition over years of lifetime, with and
   without the paper's healing factor applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.bti.firstorder import StressParameters
from repro.core.fitting import (
    ArrheniusRate,
    FitReport,
    fit_arrhenius_rate,
    fit_stress_parameters,
)
from repro.core.validation import ValidationReport, validate_model_against_series
from repro.device.variation import ProcessVariation
from repro.errors import ConfigurationError
from repro.fpga.chip import FpgaChip
from repro.fpga.ring_oscillator import StressMode
from repro.units import SECONDS_PER_YEAR, celsius, hours

#: Nominal rail used for every stress leg of the sweep.
STRESS_VOLTAGE = 1.2


@dataclass(frozen=True)
class TemperatureLeg:
    """One temperature's measured curve and its fit."""

    temperature_c: float
    times: np.ndarray
    shifts: np.ndarray
    fit: FitReport[StressParameters]


@dataclass(frozen=True)
class ArrheniusResult:
    """Everything the sweep produced."""

    legs: tuple[TemperatureLeg, ...]
    rate_law: FitReport[ArrheniusRate]
    holdout: TemperatureLeg
    holdout_validation: ValidationReport

    @property
    def effective_ea_ev(self) -> float:
        """Extracted activation energy of the aging rate constant (eV).

        For the calibrated virtual silicon this lands near the
        microscopic capture activation energy (0.9 eV) — C(T) tracks the
        capture acceleration factor, with a small upward bias from the
        residual temperature drift of the fitted slope.
        """
        return self.rate_law.parameters.ea_ev

    def beta_table(self) -> Table:
        """Fitted prefactor per stress temperature."""
        table = Table(
            "Arrhenius sweep — fitted stress parameters vs temperature",
            ["T (degC)", "beta (ns)", "C (1/s)", "NRMSE"],
            fmt="{:.4g}",
        )
        for leg in self.legs:
            p = leg.fit.parameters
            table.add_row(leg.temperature_c, p.prefactor * 1e9, p.rate_c, leg.fit.nrmse)
        return table

    def projection_table(
        self,
        use_temperature_c: float = 85.0,
        years: tuple[float, ...] = (1.0, 3.0, 10.0),
        healing_margin_relaxed: float = 0.724,
    ) -> Table:
        """Use-condition lifetime projection, with/without healing.

        Extrapolates with the fitted scaling (beta at the use temperature)
        and the reference leg's time constants; the healing column applies
        the paper's margin-relaxed factor, which Table 5 shows is set by
        alpha and the sleep conditions, not by absolute times.
        """
        reference = self.legs[-1].fit.parameters
        c_use = self.rate_law.parameters.rate(celsius(use_temperature_c))
        table = Table(
            f"Projected delay shift at {use_temperature_c:.0f} degC use conditions",
            ["lifetime (y)", "dTd unmitigated (ns)", "dTd with healing (ns)"],
            fmt="{:.3f}",
        )
        for year in years:
            t = year * SECONDS_PER_YEAR
            shift = reference.prefactor * (
                reference.offset_a + np.log1p(c_use * t)
            )
            table.add_row(year, shift * 1e9, shift * (1.0 - healing_margin_relaxed) * 1e9)
        return table


@dataclass(frozen=True)
class VoltageSweepResult:
    """Voltage-acceleration extraction (the Eq. 2 field term).

    ``gamma_per_volt`` is the fitted exponential field-acceleration
    coefficient of the aging rate constant: ``C(V) ~ exp(gamma * V)``.
    """

    voltages: tuple[float, ...]
    rate_constants: tuple[float, ...]
    gamma_per_volt: float
    r_squared: float

    def table(self) -> Table:
        """Fitted rate constant per stress voltage."""
        table = Table(
            "Voltage sweep — fitted rate constant vs stress supply (110 degC)",
            ["Vdd stress (V)", "C (1/s)"],
            fmt="{:.4g}",
        )
        for v, c in zip(self.voltages, self.rate_constants):
            table.add_row(v, c)
        return table


def run_voltage_sweep(
    seed: int = 0,
    voltages: tuple[float, ...] = (1.1, 1.2, 1.3),
    temperature_c: float = 110.0,
    stress_hours: float = 24.0,
    n_stages: int = 75,
) -> VoltageSweepResult:
    """Sweep the stress supply and extract the field acceleration.

    The microscopic truth is ``gamma_capture_per_volt = 5.0``; the
    extracted aggregate lands nearby because C(V) tracks the capture
    field factor the way C(T) tracks the Arrhenius factor.
    """
    if len(voltages) < 2:
        raise ConfigurationError("need at least two voltages")
    no_variation = ProcessVariation(0.0, 0.0, 0.0)
    rates = []
    for voltage in voltages:
        chip = FpgaChip(
            f"vsweep-{voltage:g}", n_stages=n_stages, variation=no_variation, seed=seed
        )
        times = [0.0]
        shifts = [0.0]
        step = hours(stress_hours) / 24.0
        for __ in range(24):
            chip.apply_stress(
                step,
                temperature=celsius(temperature_c),
                supply_voltage=voltage,
                mode=StressMode.DC,
            )
            times.append(times[-1] + step)
            shifts.append(chip.delta_path_delay())
        fit = fit_stress_parameters(np.array(times), np.array(shifts))
        rates.append(fit.parameters.rate_c)
    voltages_arr = np.asarray(voltages, dtype=float)
    rates_arr = np.asarray(rates, dtype=float)
    if np.any(~(rates_arr > 0.0)):
        # A rate constant that underflowed to zero (or fitted NaN) would
        # put -inf/NaN into the log regression and silently corrupt the
        # extracted gamma; refuse with the offending voltages named.
        bad = [f"{v:g} V" for v, r in zip(voltages, rates_arr) if not r > 0.0]
        raise ConfigurationError(
            "fitted rate constants must be positive for the log regression; "
            f"got non-positive/NaN rates at {', '.join(bad)}"
        )
    log_rates = np.log(rates_arr)
    design = np.column_stack([np.ones_like(voltages_arr), voltages_arr])
    coeffs, *_ = np.linalg.lstsq(design, log_rates, rcond=None)
    predicted = design @ coeffs
    ss_res = float(np.sum((log_rates - predicted) ** 2))
    ss_tot = float(np.sum((log_rates - log_rates.mean()) ** 2))
    return VoltageSweepResult(
        voltages=tuple(voltages),
        rate_constants=tuple(float(r) for r in rates),
        gamma_per_volt=float(coeffs[1]),
        r_squared=1.0 - ss_res / ss_tot if ss_tot > 0.0 else float("nan"),
    )


def run(
    seed: int = 0,
    temperatures_c: tuple[float, ...] = (80.0, 90.0, 100.0, 110.0),
    holdout_c: float = 95.0,
    stress_hours: float = 24.0,
    n_stages: int = 75,
) -> ArrheniusResult:
    """Run the sweep on identically-drawn chips (variation disabled).

    Disabling process variation isolates the temperature law — the sweep
    asks a physics question, not a sampling one.
    """
    if len(temperatures_c) < 3:
        raise ConfigurationError("need at least three temperatures to fit the scaling")
    if holdout_c in temperatures_c:
        raise ConfigurationError("the holdout temperature must not be in the sweep")
    no_variation = ProcessVariation(0.0, 0.0, 0.0)

    def measure(temp_c: float) -> TemperatureLeg:
        chip = FpgaChip(
            f"arrhenius-{temp_c:.0f}",
            n_stages=n_stages,
            variation=no_variation,
            seed=seed,
        )
        times = [0.0]
        shifts = [0.0]
        step = hours(stress_hours) / 24.0
        for __ in range(24):
            chip.apply_stress(
                step,
                temperature=celsius(temp_c),
                supply_voltage=STRESS_VOLTAGE,
                mode=StressMode.DC,
            )
            times.append(times[-1] + step)
            shifts.append(chip.delta_path_delay())
        times_arr = np.array(times)
        shifts_arr = np.array(shifts)
        return TemperatureLeg(
            temperature_c=temp_c,
            times=times_arr,
            shifts=shifts_arr,
            fit=fit_stress_parameters(times_arr, shifts_arr),
        )

    legs = tuple(measure(t) for t in temperatures_c)
    rate_law = fit_arrhenius_rate(
        [celsius(leg.temperature_c) for leg in legs],
        [leg.fit.parameters.rate_c for leg in legs],
    )
    holdout = measure(holdout_c)
    # Predict the held-out temperature: rate from the Arrhenius law,
    # slope/offset from the hottest (reference) leg.
    reference = legs[-1].fit.parameters
    c_pred = rate_law.parameters.rate(celsius(holdout_c))
    predicted = reference.prefactor * (
        reference.offset_a + np.log1p(c_pred * holdout.times)
    )
    holdout_validation = validate_model_against_series(
        holdout.shifts, predicted, threshold=0.2
    )
    return ArrheniusResult(
        legs=legs,
        rate_law=rate_law,
        holdout=holdout,
        holdout_validation=holdout_validation,
    )

"""TAB3 — extracted model parameters (paper Table 3).

The paper extracts its first-order model parameters from measurement
results; this experiment performs the same extraction against the virtual
silicon: (beta, A, C) per stress temperature from Eq. (10) fits, and
(phi2, k1, k2) per recovery condition from Eq. (11) fits, with
goodness-of-fit so the numbers are auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.bti.firstorder import RecoveryParameters, StressParameters
from repro.core.fitting import FitReport, fit_stress_parameters
from repro.experiments import table1
from repro.experiments._recovery import RECOVERY_CASES, extract


@dataclass(frozen=True)
class Table3Result:
    """Fitted parameters for every stress and recovery condition."""

    stress_fits: dict[str, FitReport[StressParameters]]
    recovery_fits: dict[str, FitReport[RecoveryParameters]]

    def stress_table(self) -> Table:
        """beta/A/C per stress condition."""
        table = Table(
            "Table 3a — extracted stress parameters (Eq. 10)",
            ["condition", "beta (ns)", "A", "C (1/s)", "NRMSE", "R^2"],
            fmt="{:.4g}",
        )
        for name, fit in self.stress_fits.items():
            p = fit.parameters
            table.add_row(
                name, p.prefactor * 1e9, p.offset_a, p.rate_c, fit.nrmse, fit.r_squared
            )
        return table

    def recovery_table(self) -> Table:
        """phi2/k1/k2 per recovery condition."""
        table = Table(
            "Table 3b — extracted recovery parameters (Eq. 11)",
            ["condition", "phi2 (ns)", "k1", "k2", "C (1/s)", "NRMSE", "R^2"],
            fmt="{:.4g}",
        )
        for name, fit in self.recovery_fits.items():
            p = fit.parameters
            table.add_row(
                name, p.prefactor * 1e9, p.k1, p.k2, p.rate_c, fit.nrmse, fit.r_squared
            )
        return table

    @property
    def all_fits_acceptable(self) -> bool:
        """True when every fit's NRMSE is below 0.15 (model matches data)."""
        reports = list(self.stress_fits.values()) + list(self.recovery_fits.values())
        return all(fit.nrmse <= 0.15 for fit in reports)


def run(seed: int = 0) -> Table3Result:
    """Fit every stress and recovery condition of the campaign."""
    result = table1.campaign(seed)
    stress_fits = {}
    for name, chip_no in (("AS110DC24", 2), ("AS100DC24", 4)):
        times, shifts = result.delay_change_series(name, chip_no=chip_no)
        stress_fits[name] = fit_stress_parameters(times, shifts)
    recovery_fits = {
        case: extract(result, case).fit for case in RECOVERY_CASES
    }
    return Table3Result(stress_fits=stress_fits, recovery_fits=recovery_fits)

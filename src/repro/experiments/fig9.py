"""FIG9 — wearout vs accelerated recovery over a periodic schedule.

The paper's Fig. 9 illustrates the whole-life picture: with alpha = 4,
110 degC and -0.3 V sleep, the delay-shift envelope saw-tooths but stays
bounded, while unmitigated aging keeps growing.  This experiment runs the
circadian planner on a fresh virtual chip against a never-sleeping
baseline at equal delivered work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.planner import CircadianPlanner, EnvelopeComparison
from repro.fpga.chip import FpgaChip
from repro.units import hours, to_hours


@dataclass(frozen=True)
class Fig9Result:
    """Healed vs baseline trajectories and the envelope summary."""

    comparison: EnvelopeComparison
    knobs: RecoveryKnobs
    period: float
    #: Cycles projected past the detailed window with the closed-form
    #: fast-forward (0 when no projection was requested).
    projected_cycles: int = 0
    #: End-of-sleep delay shift after ``n_cycles + projected_cycles``
    #: total cycles (``None`` when no projection was requested).
    projected_shift: float | None = None

    @property
    def envelope_bounded(self) -> bool:
        """Cycle peaks grow slower and slower (bounded envelope).

        Checked as: the last peak-to-peak increment is below a third of
        the first — the saw-tooth flattens instead of tracking the
        baseline's growth.
        """
        peaks = self.comparison.healed.cycle_peaks()
        if peaks.size < 3:
            return False
        increments = np.diff(peaks)
        return bool(increments[-1] < increments[0] / 3.0)

    @property
    def healed_stays_below_baseline(self) -> bool:
        """The healed peak never exceeds the unhealed end-of-life shift."""
        return self.comparison.healed.peak_shift < self.comparison.baseline.final_shift

    def table(self) -> Table:
        """Cycle-by-cycle peaks and troughs plus the baseline at same work."""
        healed = self.comparison.healed
        baseline = self.comparison.baseline
        peaks = healed.cycle_peaks()
        troughs = healed.cycle_troughs()
        active_per_cycle = self.knobs.active_fraction * self.period
        table = Table(
            "Fig. 9 — periodic wearout vs accelerated recovery (alpha = 4)",
            ["cycle", "work (h)", "peak dTd (ns)", "trough dTd (ns)",
             "baseline dTd (ns)", "cycle recovery (%)"],
            fmt="{:.2f}",
        )
        n = min(peaks.size, troughs.size)
        for i in range(n):
            work = (i + 1) * active_per_cycle
            base = baseline.at_active_time(work)
            rec = 100.0 * (1.0 - troughs[i] / peaks[i]) if peaks[i] > 0 else 0.0
            table.add_row(
                i + 1, to_hours(work), peaks[i] * 1e9, troughs[i] * 1e9, base * 1e9, rec
            )
        return table


def run(
    seed: int = 0,
    n_cycles: int = 8,
    period: float = hours(7.5),
    knobs: RecoveryKnobs | None = None,
    operating_temperature_c: float = 110.0,
    projected_cycles: int = 0,
) -> Fig9Result:
    """Simulate the Fig. 9 schedule on a fresh chip.

    The default period (6 h active + 1.5 h sleep) keeps the experiment
    fast while preserving alpha = 4; the paper's qualitative picture is
    period-independent (Table 5).  ``projected_cycles`` extends the
    whole-life view past the detailed window: the envelope trough after
    ``n_cycles + projected_cycles`` total cycles is computed with the
    planner's closed-form fast-forward, at a cost independent of how far
    the projection reaches.
    """
    knobs = knobs or RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    chip = FpgaChip("fig9", seed=seed)
    planner = CircadianPlanner(
        knobs,
        OperatingPoint(temperature_c=operating_temperature_c),
        period=period,
    )
    total_active = n_cycles * knobs.active_fraction * period
    comparison = planner.compare_against_baseline(chip, total_active)
    projected_shift = None
    if projected_cycles > 0:
        state = chip.snapshot()
        projected_shift = planner.fast_forward(chip, n_cycles + projected_cycles)
        chip.restore(state)
    return Fig9Result(
        comparison=comparison,
        knobs=knobs,
        period=period,
        projected_cycles=projected_cycles,
        projected_shift=projected_shift,
    )

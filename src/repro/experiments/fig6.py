"""FIG6 — recovered delay vs time, grouped by temperature (paper Fig. 6).

Panel (a): 20 degC, 0 V vs -0.3 V.  Panel (b): 110 degC, 0 V vs -0.3 V.
The headline: a negative supply voltage accelerates recovery at *both*
temperatures — "significantly accelerated even at room temperature".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.experiments import table1
from repro.experiments._recovery import RecoveryCurve, extract
from repro.units import hours

#: Sample marks the paper annotates (hours into recovery).
MARKS_HOURS = (0.3, 1.0, 2.0, 4.0, 6.0)


@dataclass(frozen=True)
class Fig6Result:
    """The four 6 h recovery curves grouped as the paper panels them."""

    panel_20c: tuple[RecoveryCurve, RecoveryCurve]  # (0V, -0.3V)
    panel_110c: tuple[RecoveryCurve, RecoveryCurve]  # (0V, -0.3V)

    @property
    def negative_voltage_accelerates_at_20c(self) -> bool:
        """RD(-0.3 V) above RD(0 V) at every mark, 20 degC panel."""
        return _dominates(self.panel_20c[1], self.panel_20c[0])

    @property
    def negative_voltage_accelerates_at_110c(self) -> bool:
        """RD(-0.3 V) above RD(0 V) at every mark, 110 degC panel."""
        return _dominates(self.panel_110c[1], self.panel_110c[0])

    def table(self) -> Table:
        """Recovered delay (ns) at the paper's marks for all four cases."""
        table = Table(
            "Fig. 6 — recovered delay (ns) at (a) 20 degC and (b) 110 degC",
            ["time (h)", "20C 0V", "20C -0.3V", "110C 0V", "110C -0.3V"],
        )
        curves = [*self.panel_20c, *self.panel_110c]
        for mark in MARKS_HOURS:
            t = hours(mark)
            table.add_row(f"{mark:g}", *[c.recovered.at(t) * 1e9 for c in curves])
        return table


def _dominates(faster: RecoveryCurve, slower: RecoveryCurve) -> bool:
    return all(
        faster.recovered.at(hours(m)) > slower.recovered.at(hours(m))
        for m in MARKS_HOURS
    )


def run(seed: int = 0) -> Fig6Result:
    """Extract the Fig. 6 panels from the shared campaign."""
    result = table1.campaign(seed)
    return Fig6Result(
        panel_20c=(extract(result, "R20Z6"), extract(result, "AR20N6")),
        panel_110c=(extract(result, "AR110Z6"), extract(result, "AR110N6")),
    )

"""repro — accelerated self-healing for electronic systems.

A production-quality reproduction of Guo, Burleson and Stan, *Modeling and
Experimental Demonstration of Accelerated Self-Healing Techniques*,
DAC 2014: device-level BTI trapping/detrapping models, a virtual 40 nm
FPGA testbed (pass-transistor LUT ring oscillators under a thermal chamber
and programmable supplies), the accelerated self-healing core (recovery
knobs, proactive scheduling, model fitting), and a multi-core extension.

Quickstart::

    from repro import FpgaChip, StressMode
    from repro.units import celsius, hours

    chip = FpgaChip("demo", seed=1)
    chip.apply_stress(hours(24), temperature=celsius(110), mode=StressMode.DC)
    aged = chip.delta_path_delay()
    chip.apply_recovery(hours(6), temperature=celsius(110), supply_voltage=-0.3)
    healed = chip.delta_path_delay()
    print(f"recovered {1 - healed / aged:.0%} of the delay shift")
"""

from repro.bti import (
    BiasCondition,
    BiasPhase,
    DeviceAgingModel,
    FirstOrderBtiModel,
    FirstOrderDelayModel,
    ReactionDiffusionModel,
    StressPolarity,
    TrapParameters,
    TrapPopulation,
    Waveform,
)
from repro.device import TECH_40NM, ProcessVariation, TechnologyParameters
from repro.errors import PhysicsViolationError
from repro.fpga import FpgaChip, ReadoutCounter, RingOscillator, StressMode
from repro.guard import Guard, GuardConfig, GuardMode, use_guard

__version__ = "1.0.0"

__all__ = [
    "BiasCondition",
    "BiasPhase",
    "DeviceAgingModel",
    "FirstOrderBtiModel",
    "FirstOrderDelayModel",
    "FpgaChip",
    "Guard",
    "GuardConfig",
    "GuardMode",
    "PhysicsViolationError",
    "ProcessVariation",
    "ReactionDiffusionModel",
    "ReadoutCounter",
    "RingOscillator",
    "StressMode",
    "StressPolarity",
    "TECH_40NM",
    "TechnologyParameters",
    "TrapParameters",
    "TrapPopulation",
    "Waveform",
    "__version__",
    "use_guard",
]

"""Statistical aging margins: why the worst case keeps getting worse.

The paper's introduction argues that with scaling "the worst case becomes
even worse and the distribution becomes skewed", eroding what adaptation
alone can recover.  This example makes that quantitative on the trap
model: device-to-device aging distributions, the guardband needed to
cover 99 % of devices, how variability explodes as devices shrink — and
how much of the p99 guardband accelerated self-healing claws back.

Run:  python examples/statistical_margins.py
"""

import numpy as np

from repro.analysis.tables import Table
from repro.bti.conditions import BiasCondition, BiasPhase
from repro.bti.statistical import (
    margin_at_quantile,
    sample_device_shifts,
    shift_statistics,
    sigma_mu_relation,
)
from repro.units import hours

STRESS = BiasPhase(duration=hours(24.0), bias=BiasCondition.at_celsius(1.2, 110.0))
HEAL = BiasPhase(duration=hours(6.0), bias=BiasCondition.at_celsius(-0.3, 110.0))


def population_view() -> None:
    """Distribution of aging across 1000 devices, with and without healing."""
    stressed = sample_device_shifts([STRESS], 1000, rng=0)
    healed = sample_device_shifts([STRESS, HEAL], 1000, rng=0)

    table = Table(
        "Aging distribution across 1000 devices (24 h stress @110 degC)",
        ["population", "mean (mV)", "sigma (mV)", "p99 (mV)", "p99/mean"],
        fmt="{:.2f}",
    )
    for name, shifts in (("stressed", stressed), ("after 6 h healing", healed)):
        stats = shift_statistics(shifts)
        p99 = margin_at_quantile(shifts, 0.99)
        table.add_row(name, stats.mean * 1e3, stats.std * 1e3, p99 * 1e3,
                      p99 / stats.mean)
    table.print()

    saved = 1.0 - margin_at_quantile(healed, 0.99) / margin_at_quantile(stressed, 0.99)
    print(f"healing shrinks the p99 guardband by {saved:.1%} — margin relaxed "
          f"at the population level, not just for the average device\n")


def scaling_view() -> None:
    """Relative variability vs device size."""
    relation = sigma_mu_relation(
        [STRESS], trap_counts=(10.0, 40.0, 160.0, 640.0), n_devices=400, rng=1
    )
    table = Table(
        "Variability vs device size (fewer traps = smaller device)",
        ["mean trap count", "sigma/mu"],
        fmt="{:.3f}",
    )
    for count, rel in sorted(relation.items()):
        table.add_row(f"{count:.0f}", rel)
    table.print()
    counts = sorted(relation)
    print(f"scaling from {counts[-1]:.0f}-trap to {counts[0]:.0f}-trap devices "
          f"multiplies relative aging spread by "
          f"{relation[counts[0]] / relation[counts[-1]]:.1f}x")


def main() -> None:
    population_view()
    scaling_view()


if __name__ == "__main__":
    main()

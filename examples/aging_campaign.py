"""Full Table-1 aging campaign on five virtual chips.

Replays the paper's complete experimental schedule — burn-in, the four
accelerated-stress cases and the five recovery cases — on a virtual bench
(thermal chamber, programmable supply, 500 Hz reference counter), then
prints every table of the paper's evaluation and archives the raw
measurement log as CSV.

Run:  python examples/aging_campaign.py [output.csv]
"""

import sys

from repro.experiments import fig4, fig5, fig6, fig7, fig8, table1, table2, table3, table4, table5


def main(csv_path: str | None = None) -> None:
    print("running the Table 1 campaign (5 chips, ~170 simulated hours)...\n")
    result = table1.campaign(seed=0)
    table1.schedule_table().print()

    fig4.run().table().print()
    fig5.run().table().print()
    table2.run().table().print()

    t3 = table3.run()
    t3.stress_table().print()
    t3.recovery_table().print()

    fig6.run().table().print()
    fig7.run().table().print()
    fig8.run().table().print()
    table4.run().table().print()
    table5.run().table().print()

    if csv_path:
        result.log.write_csv(csv_path)
        print(f"raw measurement log ({len(result.log)} records) -> {csv_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)

"""Quickstart: stress a virtual 40 nm FPGA, then heal it.

Reproduces the paper's headline in ~30 lines: 24 h of accelerated DC
stress at 110 degC, then 6 h of accelerated recovery (110 degC, -0.3 V) —
one quarter of the stress time — undoes roughly three quarters of the
accumulated delay shift.

Run:  python examples/quickstart.py
"""

from repro import FpgaChip, StressMode
from repro.units import celsius, hours, to_megahertz


def main() -> None:
    chip = FpgaChip("quickstart", seed=1)
    fresh_frequency = chip.oscillation_frequency()
    print(f"fresh ring oscillator: {to_megahertz(fresh_frequency):.3f} MHz "
          f"({chip.fresh_path_delay * 1e9:.1f} ns path delay)")

    # Accelerated wearout: the paper's AS110DC24 case.
    chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
    aged_shift = chip.delta_path_delay()
    degradation = 100.0 * (1.0 - chip.oscillation_frequency() / fresh_frequency)
    print(f"after 24 h DC stress @110 degC: +{aged_shift * 1e9:.2f} ns "
          f"({degradation:.2f} % frequency degradation)")

    # Accelerated self-healing: the paper's AR110N6 case (alpha = 4).
    chip.apply_recovery(hours(6.0), temperature=celsius(110.0), supply_voltage=-0.3)
    residual = chip.delta_path_delay()
    recovered = 1.0 - residual / aged_shift
    print(f"after 6 h accelerated recovery (110 degC, -0.3 V): "
          f"+{residual * 1e9:.2f} ns residual")
    print(f"design margin relaxed: {recovered:.1%} "
          f"(paper reports 72.4 % for this case; a measured campaign —\n"
          f"  see examples/aging_campaign.py — lands closer because the\n"
          f"  periodic RO readouts sample away some fast recovery)")


if __name__ == "__main__":
    main()

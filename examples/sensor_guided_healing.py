"""Sensor-guided self-healing: odometer + adaptive circadian rhythm.

Puts three pieces of the library together the way a deployed system
would:

1. a :class:`SiliconOdometer` RO pair tracks in-situ degradation with no
   oracle access;
2. a reactive policy driven by the *sensor estimate* (not ground truth)
   triggers accelerated recovery;
3. the :class:`VirtualCircadianRhythm` controller shows the proactive
   alternative converging to a schedule that needs no sensor at all.

Run:  python examples/sensor_guided_healing.py
"""

from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.virtual_rhythm import VirtualCircadianRhythm
from repro.fpga.chip import FpgaChip
from repro.fpga.ring_oscillator import StressMode
from repro.fpga.sensors import SiliconOdometer
from repro.units import celsius, hours


def sensor_reactive_demo() -> None:
    """Reactive healing triggered by the odometer estimate."""
    sensor = SiliconOdometer(seed=1)
    offset = sensor.calibrate(rng=0)
    trigger = 0.018  # heal when the sensor sees 1.8 % degradation

    table = Table(
        "Sensor-guided reactive healing (trigger: 1.8 % sensed degradation)",
        ["hour", "sensor (%)", "truth (%)", "action"],
        fmt="{:.2f}",
    )
    hour = 0
    heals = 0
    for __ in range(16):
        sensor.experience(hours(3.0), celsius(110.0), 1.2, mode=StressMode.DC)
        hour += 3
        estimate = sensor.measure(celsius(110.0), rng=hour).degradation - offset
        truth = sensor.true_degradation()  # oracle at the same instant
        if estimate >= trigger:
            sensor.experience(hours(3.0), celsius(110.0), -0.3)
            hour += 3
            heals += 1
            action = "HEAL 3 h @110C/-0.3V"
        else:
            action = "-"
        table.add_row(hour, estimate * 100, truth * 100, action)
    table.print()
    print(f"{heals} healing events; final true degradation "
          f"{sensor.true_degradation():.2%}\n")


def proactive_rhythm_demo() -> None:
    """The sensor-free alternative: adaptive circadian scheduling."""
    chip = FpgaChip("rhythm-demo", seed=2)
    rhythm = VirtualCircadianRhythm(
        target_shift=1.5e-9,
        period=hours(7.5),
        knobs=RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0),
        operating=OperatingPoint(temperature_c=110.0),
    )
    result = rhythm.run(chip, n_cycles=10)
    table = Table(
        "Virtual circadian rhythm (target residual: 1.5 ns, no sensor loop)",
        ["cycle", "alpha", "peak (ns)", "trough (ns)"],
        fmt="{:.2f}",
    )
    for cycle in result.cycles:
        table.add_row(cycle.index + 1, cycle.alpha, cycle.peak_shift * 1e9,
                      cycle.trough_shift * 1e9)
    table.print()
    print(f"converged: {result.converged}; settled alpha = {result.final_alpha:.2f}")


def main() -> None:
    sensor_reactive_demo()
    proactive_rhythm_demo()


if __name__ == "__main__":
    main()

"""Sweep the three recovery knobs and map the self-healing design space.

The paper's knobs (Sec. 4.1): the active:sleep ratio alpha, the sleep
voltage and the sleep temperature.  This example sweeps each around the
paper's operating point using the circadian planner, printing how much
design margin each setting relaxes and what it costs in throughput — the
cross-layer trade-off the paper's conclusion points at.

Run:  python examples/recovery_knob_sweep.py
"""

from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.planner import CircadianPlanner
from repro.fpga.chip import FpgaChip
from repro.units import hours


def margin_for(chip, knobs: RecoveryKnobs) -> float:
    planner = CircadianPlanner(
        knobs, OperatingPoint(temperature_c=110.0), period=hours(7.5)
    )
    comparison = planner.compare_against_baseline(
        chip, total_active_time=hours(24.0), max_segment=hours(1.5)
    )
    return comparison.margin_relaxed


def main() -> None:
    chip = FpgaChip("knob-sweep", seed=0)

    table = Table(
        "Recovery-knob design space (margin relaxed vs no-healing baseline)",
        ["alpha", "sleep V", "sleep T (degC)", "throughput overhead",
         "margin relaxed"],
        fmt="{:.3f}",
    )
    settings = [
        # alpha sweep at the paper's sleep conditions
        (2.0, -0.3, 110.0),
        (4.0, -0.3, 110.0),
        (8.0, -0.3, 110.0),
        # voltage sweep at alpha = 4, 110 degC
        (4.0, 0.0, 110.0),
        (4.0, -0.15, 110.0),
        # temperature sweep at alpha = 4, -0.3 V
        (4.0, -0.3, 20.0),
        (4.0, -0.3, 60.0),
        # today's "sleep": passive inactivity at ambient
        (4.0, 0.0, 20.0),
    ]
    best = None
    for alpha, voltage, temp in settings:
        knobs = RecoveryKnobs(
            alpha=alpha, sleep_voltage=voltage, sleep_temperature_c=temp
        )
        margin = margin_for(chip, knobs)
        table.add_row(alpha, f"{voltage:g}", f"{temp:.0f}", 1.0 / alpha, margin)
        if best is None or margin > best[1]:
            best = ((alpha, voltage, temp), margin)
    table.print()

    (alpha, voltage, temp), margin = best
    print(f"best setting: alpha={alpha:g}, {voltage:g} V, {temp:.0f} degC "
          f"-> {margin:.1%} margin relaxed")
    print("note the passive-sleep row: inactivity alone relaxes far less "
          "margin — sleep must be an *active* recovery period.")


if __name__ == "__main__":
    main()

"""Extract the paper's first-order model from virtual measurements.

Replays the paper's Section 3/5 modelling flow end to end:

1. measure stress curves at 100 and 110 degC and recovery curves under
   four sleep conditions (the Table 1 campaign);
2. fit the first-order closed forms — Eq. (10) for stress, Eq. (11) for
   recovery — per condition (the paper's Table 3);
3. fit the cross-condition physics scaling phi ~ K exp(-E0/kT)
   exp(B V/kT) (Eqs. 2/4) to the per-condition recovery prefactors;
4. validate every model curve against the measurement it was fitted to.

Run:  python examples/model_fitting.py
"""

from repro.analysis.tables import Table
from repro.core.fitting import fit_physics_scaling
from repro.experiments import table1, table3
from repro.experiments._recovery import RECOVERY_CASES, extract
from repro.units import celsius


def main() -> None:
    print("running campaign and extracting model parameters...\n")
    result = table3.run(seed=0)
    result.stress_table().print()
    result.recovery_table().print()

    campaign = table1.campaign(seed=0)
    validation = Table(
        "Model-vs-measurement validation (fitted Eq. 11 per recovery case)",
        ["case", "NRMSE", "R^2", "verdict"],
        fmt="{:.3f}",
    )
    conditions = []
    for case in ("R20Z6", "AR20N6", "AR110Z6", "AR110N6"):
        curve = extract(campaign, case)
        validation.add_row(
            case,
            curve.validation.nrmse,
            curve.validation.r_squared,
            "PASS" if curve.validation.passed else "FAIL",
        )
        __, temp_c, voltage, __ = RECOVERY_CASES[case]
        conditions.append((voltage, celsius(temp_c), curve.fit.parameters.prefactor))
    validation.print()

    # Cross-condition scaling of the recovery prefactor (paper Eq. 4):
    # one (K, E0, B) triple should explain all four phi2 values.
    voltages = [v for v, __, __ in conditions]
    temperatures = [t for __, t, __ in conditions]
    prefactors = [max(p, 1e-15) for __, __, p in conditions]
    scaling = fit_physics_scaling(voltages, temperatures, prefactors)
    print("cross-condition scaling fit (Eq. 4):")
    print(f"  K = {scaling.parameters.k_prefactor:.3e}")
    print(f"  E0 = {scaling.parameters.e0_ev:.3f} eV")
    print(f"  B (bundled B/tox) = {scaling.parameters.b_field_ev_per_volt:.3f} eV/V")
    print(f"  fit R^2 = {scaling.r_squared:.3f} over {scaling.n_points} conditions")


if __name__ == "__main__":
    main()

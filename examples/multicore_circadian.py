"""Multi-core circadian self-healing (the paper's Fig. 10, quantified).

Runs an 8-core system (2 x 4 thermal grid, 6 cores active) for two weeks
under four schedulers — fixed mapping, round-robin rotation, circadian
(rotation + negative-voltage sleep) and heater-aware circadian (sleep the
most-aged cores next to hot neighbours) — and compares end-of-life margin,
wear spread and energy.  Also demonstrates the on-chip heater effect and a
diurnal workload where night troughs provide free healing windows.

Run:  python examples/multicore_circadian.py
"""

import numpy as np

from repro.analysis.heatmap import render_heatmap
from repro.analysis.tables import Table
from repro.experiments import fig10
from repro.multicore import (
    CircadianScheduler,
    DiurnalWorkload,
    MulticoreSystem,
    RoundRobinScheduler,
    ThermalGrid,
    compute_metrics,
)
from repro.units import hours


def heater_snapshot() -> None:
    """The paper's Fig. 10 snapshot: cores 3 and 7 asleep, neighbours hot."""
    grid = ThermalGrid()
    powers = np.array([0.4 if i in (2, 6) else 10.0 for i in range(grid.n_cores)])
    temps = grid.steady_state(powers) - 273.15
    table = Table(
        "On-chip heaters: 6 active cores warm the 2 sleeping ones",
        ["core", "state", "temperature (degC)"],
        fmt="{:.1f}",
    )
    for i, t in enumerate(temps):
        table.add_row(f"core {i + 1}", "sleeping" if i in (2, 6) else "active", t)
    table.print()
    print(render_heatmap(
        temps.reshape(grid.rows, grid.cols),
        title="die temperature field (degC); cores 3 and 7 are asleep",
        cell_width=5,
    ))
    print()


def scheduler_ladder() -> None:
    """Four schedulers, identical hardware and workload."""
    result = fig10.run(seed=0, n_epochs=24 * 14)
    result.table().print()
    print(f"heater-aware margin gain over baseline: "
          f"{result.heater_aware_margin_gain:.1%} "
          f"at {result.energy_overhead:.2%} energy overhead\n")


def diurnal_demo() -> None:
    """Day/night workload: the night trough is a free healing window."""
    workload = DiurnalWorkload(peak=7, trough=3, day_epochs=16, night_epochs=8)
    table = Table(
        "Diurnal workload (7 cores by day, 3 by night), two weeks",
        ["scheduler", "worst dTd (ps)", "spread (ps)"],
        fmt="{:.2f}",
    )
    for name, scheduler in (
        ("round-robin (passive sleep)", RoundRobinScheduler()),
        ("circadian (active recovery)", CircadianScheduler()),
    ):
        system = MulticoreSystem(seed=3)
        history = system.run(scheduler, workload, n_epochs=24 * 14,
                             epoch_duration=hours(1.0))
        metrics = compute_metrics(history)
        table.add_row(name, metrics.worst_shift * 1e12, metrics.aging_spread * 1e12)
    table.print()


def main() -> None:
    heater_snapshot()
    scheduler_ladder()
    diurnal_demo()


if __name__ == "__main__":
    main()

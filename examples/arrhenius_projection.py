"""Accelerated-test engineering: Ea extraction and 10-year projection.

The workflow the paper's accelerated methodology exists to enable:

1. stress virtual chips at 80/90/100/110 degC (DC, 24 h each);
2. fit the first-order model per temperature and extract the activation
   energy of the aging rate constant (time-temperature superposition);
3. validate the law on a held-out 95 degC chip it never saw;
4. project a decade at 85 degC use conditions — and show what the
   paper's 72.4 % margin-relaxed healing schedule does to that budget.

Run:  python examples/arrhenius_projection.py
"""

from repro.experiments import arrhenius


def main() -> None:
    print("running the temperature sweep (5 chips x 24 h)...\n")
    result = arrhenius.run(seed=0)

    result.beta_table().print()
    print(f"extracted activation energy: {result.effective_ea_ev:.2f} eV "
          f"(microscopic capture Ea: 0.90 eV)")
    print(f"rate-law fit R^2: {result.rate_law.r_squared:.4f}")
    print(f"holdout prediction at 95 degC: {result.holdout_validation.describe()}\n")

    result.projection_table(use_temperature_c=85.0).print()
    print("the healing column applies the paper's margin-relaxed factor "
          "(72.4 %),\nwhich Table 5 shows depends on alpha and sleep "
          "conditions, not absolute times.")


if __name__ == "__main__":
    main()

"""Extension — accelerated self-healing vs the GNOMO mitigation (ref. 12).

Three strategies deliver the same 24 h of nominal-speed work under
accelerated conditions:

* **nominal** — run continuously at 1.2 V (the unmitigated baseline);
* **GNOMO** — run boosted at 1.32 V, power-gate the saved time (in-
  operation mitigation: slows wearout, pays dynamic power);
* **self-healing** — run at nominal, then actively rejuvenate for 1/4 of
  the stress time (the paper's technique: reverses wearout, pays wall
  clock).
"""

from repro.analysis.tables import Table
from repro.core.gnomo import run_gnomo
from repro.fpga.chip import FpgaChip
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours


def run(seed: int = 0):
    nominal = FpgaChip("nominal", seed=seed)
    nominal.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)

    gnomo_chip = FpgaChip("gnomo", seed=seed)
    gnomo = run_gnomo(gnomo_chip, hours(24.0), boosted_voltage=1.32, cycle=hours(6.0))

    healed = FpgaChip("healed", seed=seed)
    healed.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
    healed.apply_recovery(hours(6.0), temperature=celsius(110.0), supply_voltage=-0.3)

    return nominal.delta_path_delay(), gnomo, healed.delta_path_delay()


def test_bench_ext_gnomo_comparison(once):
    """Who leaves more margin at equal delivered work, and at what cost."""
    nominal_shift, gnomo, healed_shift = once(run, seed=0)
    table = Table(
        "Self-healing vs GNOMO vs nominal (24 h of work, 110 degC)",
        ["strategy", "dTd (ns)", "vs nominal", "dyn. energy", "wall clock (h)"],
        fmt="{:.2f}",
    )
    table.add_row("nominal 1.2V", nominal_shift * 1e9, 1.0, 1.0, 24.0)
    table.add_row(
        "GNOMO 1.32V", gnomo.delay_shift * 1e9, gnomo.delay_shift / nominal_shift,
        gnomo.energy_factor, 24.0,
    )
    table.add_row(
        "self-healing (paper)", healed_shift * 1e9, healed_shift / nominal_shift,
        1.0, 30.0,
    )
    table.print()
    # GNOMO helps over nominal...
    assert gnomo.delay_shift < nominal_shift
    # ...but active rejuvenation repairs deeper, without the power premium.
    assert healed_shift < gnomo.delay_shift
    assert gnomo.energy_factor > 1.15

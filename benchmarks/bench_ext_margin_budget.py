"""Extension — from aging statistics to guardbands and yield.

Turns the reproduction's physics into the designer-facing numbers the
paper's introduction argues about: the fmax guardband a 99 %-coverage
margin policy demands with and without accelerated self-healing, and the
parametric yield consequence of shipping the tighter (healed) bin.
"""

from repro.bti.conditions import BiasCondition, BiasPhase
from repro.bti.statistical import sample_device_shifts
from repro.core.margin import build_margin_budget
from repro.units import hours

STRESS = BiasPhase(duration=hours(24.0), bias=BiasCondition.at_celsius(1.2, 110.0))
HEAL = BiasPhase(duration=hours(6.0), bias=BiasCondition.at_celsius(-0.3, 110.0))
OVERDRIVE = 0.78  # Vdd - Vth0 of the 40 nm process


def run(n_devices: int = 800):
    unhealed = sample_device_shifts([STRESS], n_devices, rng=0) / OVERDRIVE
    healed = sample_device_shifts([STRESS, HEAL], n_devices, rng=0) / OVERDRIVE
    return build_margin_budget(unhealed, healed, coverage=0.99)


def test_bench_ext_margin_budget(once):
    """Healing shrinks the p99 guardband and rescues yield."""
    budget = once(run)
    budget.table().print()
    print(f"guardband reduction from healing: {budget.guardband_reduction:.1%}")
    assert budget.guardband_healed < budget.guardband_unhealed
    assert budget.guardband_reduction > 0.4
    assert budget.yield_healed > budget.yield_unhealed

"""SMOKE — 200-chip fleet: sequential vs sharded runs must hash alike.

Guards the shard-merge contract end to end: a 200-chip binned-fidelity
fleet run in one process and the same lot fanned out over two worker
processes must produce identical per-chip sanitizer digests, identical
summaries and an identical merged record stream.  Every worker
re-derives the full per-chip RNG stream table from the master seed, so
the shard cut must never move a stream.

Run directly (CI does)::

    PYTHONPATH=src python -m pytest benchmarks/smoke_fleet_campaign.py -q
"""

from repro.lab.fleet import run_fleet_campaign

SEED = 3
N_CHIPS = 200


def test_fleet_shards_bit_identical():
    sequential = run_fleet_campaign(
        seed=SEED, n_chips=N_CHIPS, fidelity="binned", sanitize=True,
        collect="summary",
    )
    sharded = run_fleet_campaign(
        seed=SEED, n_chips=N_CHIPS, fidelity="binned", sanitize=True,
        collect="summary", shards=2,
    )
    assert sequential.state_hashes, "sanitizer produced no digests"
    assert sequential.state_hashes == sharded.state_hashes
    assert list(sequential.log) == list(sharded.log)
    assert sequential.fresh_delays == sharded.fresh_delays
    assert [s.case_end_frequency for s in sequential.summaries] == [
        s.case_end_frequency for s in sharded.summaries
    ]
    print(
        f"{N_CHIPS}-chip fleet: {len(sequential.state_hashes)} phase digests "
        f"identical across 1 vs 2 shards ({sequential.total_measurements} "
        f"measurements)"
    )

"""Ablation — modelling choices the paper's limitations section flags.

Two comparisons:

* **TD log-law vs reaction-diffusion power law** fitted to the same
  measured stress curve: the TD-derived closed form should fit the
  virtual silicon (which is trap-based) better, mirroring the argument
  for trapping/detrapping models on real measured data.
* **First-order delay (Eq. 6) vs alpha-power delay** on identical aging:
  the paper concedes its delay estimate is first order; the ablation
  quantifies how much that underestimates late-life delay shift.
"""

import numpy as np

from repro.analysis.tables import Table
from repro.bti.rd_model import ReactionDiffusionModel
from repro.core.fitting import fit_stress_parameters
from repro.device.variation import ProcessVariation
from repro.experiments import table1
from repro.fpga.chip import FpgaChip
from repro.units import celsius, hours


def fit_rd_k(times, shifts, model: ReactionDiffusionModel) -> float:
    """Least-squares scale for the RD power law on a measured curve."""
    basis = np.power(np.maximum(times, 0.0), model.exponent)
    return float(np.sum(basis * shifts) / np.sum(basis * basis))


def compare_td_vs_rd(seed: int = 0) -> tuple[float, float]:
    """(TD NRMSE, RD NRMSE) on the 110 degC stress curve."""
    result = table1.campaign(seed)
    times, shifts = result.delay_change_series("AS110DC24", chip_no=2)
    td_fit = fit_stress_parameters(times, shifts)
    rd = ReactionDiffusionModel()
    k = fit_rd_k(times, shifts, rd)
    rd_pred = k * np.power(np.maximum(times, 0.0), rd.exponent)
    rd_rmse = float(np.sqrt(np.mean((rd_pred - shifts) ** 2)))
    rd_nrmse = rd_rmse / float(shifts.max() - shifts.min())
    return td_fit.nrmse, rd_nrmse


def compare_delay_models(seed: int = 0) -> tuple[float, float]:
    """(first-order dTd, alpha-power dTd) after a long identical stress."""
    shifts = []
    for model in ("first-order", "alpha-power"):
        chip = FpgaChip(
            "ablation", variation=ProcessVariation(0.0, 0.0, 0.0),
            delay_model=model, seed=seed,
        )
        chip.apply_stress(hours(48.0), temperature=celsius(110.0))
        shifts.append(chip.delta_path_delay())
    return shifts[0], shifts[1]


def test_bench_ablation_models(once):
    """Quantify both modelling ablations."""

    def run():
        return compare_td_vs_rd(0), compare_delay_models(0)

    (td_nrmse, rd_nrmse), (linear, alpha) = once(run)
    table = Table("Ablation — modelling choices", ["comparison", "value"], fmt="{:.4f}")
    table.add_row("TD log-law fit NRMSE", td_nrmse)
    table.add_row("RD power-law fit NRMSE", rd_nrmse)
    table.add_row("first-order dTd @48h (ns)", linear * 1e9)
    table.add_row("alpha-power dTd @48h (ns)", alpha * 1e9)
    table.print()
    # The trap-based silicon is log-like: the TD closed form fits better.
    assert td_nrmse < rd_nrmse
    # Alpha-power exceeds the first-order linearisation (paper limitation).
    assert alpha > linear

"""SMOKE — Table 1 campaign with injected physics faults under the guards.

Exercises the :mod:`repro.guard` contracts end to end, the way a real
upset exercises them: a deterministic :class:`FaultPlan` writes NaN and
out-of-domain occupancies straight into a chip's trap state mid-campaign,
then —

* **clamp** mode repairs the state in place, counts the violations, and
  the campaign completes with a full log;
* **clamp with a zero budget** quarantines the struck chip and completes
  on the survivors;
* **raise** mode fails fast with a typed
  :class:`~repro.errors.PhysicsViolationError` whose repro bundle holds
  the corrupted trap state — replaying the bundled occupancy against a
  fresh guard reproduces the exact contract violation.

Run directly (CI does)::

    PYTHONPATH=src python -m pytest benchmarks/smoke_guard_campaign.py -q
"""

import numpy as np
import pytest

from repro.errors import PhysicsViolationError
from repro.guard import Guard, GuardConfig, read_bundle
from repro.lab.campaign import run_table1_campaign
from repro.lab.faults import FaultEvent, FaultKind, FaultPlan
from repro.obs import Tracer
from repro.units import hours

SEED = 7
N_CHIPS = 2

#: Strikes chip-1 one simulated hour in — mid-baseline, well before the
#: schedule ends, so every mode sees the corruption during a case.
UPSET_PLAN = FaultPlan(
    [
        FaultEvent(
            kind=FaultKind.TRAP_UPSET,
            chip_id="chip-1",
            start=hours(1.0),
            magnitude=float("nan"),
        ),
        FaultEvent(
            kind=FaultKind.TRAP_UPSET,
            chip_id="chip-1",
            start=hours(3.0),
            magnitude=2.5,
        ),
    ]
)


def test_clamp_mode_completes_with_violations_counted():
    tracer = Tracer()
    result = run_table1_campaign(
        seed=SEED,
        n_chips=N_CHIPS,
        tracer=tracer,
        faults=UPSET_PLAN,
        guard=GuardConfig(mode="clamp", dump_dir=None),
    )
    assert result.complete
    assert not result.quarantined
    violations = tracer.metrics.value("guard.violations.bti.occupancy")
    assert violations > 0.0
    # The repaired state stayed physical: the clean chip and the struck
    # chip both finished their full schedules.
    assert set(result.chips) == {"chip-1", "chip-2"}
    print(f"clamp: campaign complete, {violations:g} occupancy violations repaired")


def test_clamp_budget_quarantines_struck_chip():
    result = run_table1_campaign(
        seed=SEED,
        n_chips=N_CHIPS,
        faults=UPSET_PLAN,
        guard=GuardConfig(mode="clamp", violation_budget=0, dump_dir=None),
    )
    assert not result.complete
    assert set(result.quarantined) == {"chip-1"}
    assert "budget" in result.quarantined["chip-1"].reason
    # The untouched chip's records all landed.
    assert any(record.chip_id == "chip-2" for record in result.log)
    print(f"clamp budget=0: {result.quarantined['chip-1'].reason}")


def test_raise_mode_fails_fast_with_replayable_bundle(tmp_path):
    dumps = tmp_path / "guard-dumps"
    with pytest.raises(PhysicsViolationError) as excinfo:
        run_table1_campaign(
            seed=SEED,
            n_chips=N_CHIPS,
            faults=UPSET_PLAN,
            guard=GuardConfig(mode="raise", dump_dir=str(dumps)),
        )
    error = excinfo.value
    assert error.contract == "bti.occupancy"
    assert error.bundle_path is not None
    bundle = read_bundle(error.bundle_path)
    occupancy = bundle.arrays["occupancy"]
    # Replay: the bundled state violates the exact contract it was
    # dumped for, under a fresh guard with the same configuration.
    replay = Guard(GuardConfig(mode="raise", dump_dir=None))
    with pytest.raises(PhysicsViolationError) as replayed:
        replay.check_array("bti.occupancy", np.array(occupancy), 0.0, 1.0)
    assert replayed.value.contract == error.contract
    print(f"raise: failed fast at {bundle.contract}, bundle replayed from {bundle.path}")

"""Ablation — duty-cycle rate averaging vs explicit toggled simulation.

The AC stress model evolves traps with duty-averaged rates in a single
closed-form step.  This bench validates that shortcut against an explicit
square-wave simulation (pure rate physics, no empirical AC correction)
across toggle periods, and separately shows the size of the empirical AC
capture-suppression correction that calibration adds on top.
"""

from repro.analysis.tables import Table
from repro.bti.traps import TrapParameters, TrapPopulation
from repro.bti.waveform_sim import compare_toggled_vs_averaged
from repro.units import celsius, hours


def run():
    pure = TrapParameters(mean_trap_count=30.0, ac_capture_suppression=1.0)
    rows = []
    for period in (hours(1.0), 600.0, 60.0):
        comparison = compare_toggled_vs_averaged(
            lambda: TrapPopulation(pure, n_owners=4, rng=11),
            duration=hours(6.0),
            toggle_period=period,
            stress_voltage=1.2,
            relax_voltage=0.0,
            temperature=celsius(110.0),
        )
        rows.append((period, comparison.max_relative_error))

    # Size of the empirical AC correction at the calibrated default.
    corrected = TrapParameters(mean_trap_count=30.0)
    comparison = compare_toggled_vs_averaged(
        lambda: TrapPopulation(corrected, n_owners=4, rng=11),
        duration=hours(6.0),
        toggle_period=60.0,
        stress_voltage=1.2,
        relax_voltage=0.0,
        temperature=celsius(110.0),
    )
    suppression = comparison.averaged_shift.sum() / comparison.explicit_shift.sum()
    return rows, suppression


def test_bench_ablation_duty_cycle(once):
    """Averaging converges as toggling gets fast; correction is deliberate."""
    rows, suppression = once(run)
    table = Table(
        "Duty-cycle averaging vs explicit toggling (6 h AC @110 degC)",
        ["toggle period (s)", "max relative error"],
        fmt="{:.4f}",
    )
    for period, error in rows:
        table.add_row(f"{period:.0f}", error)
    table.print()
    print(f"calibrated AC capture-suppression factor on top: {suppression:.2f}x")
    errors = [error for __, error in rows]
    # Convergence with faster toggling; tight at the fastest period.
    assert errors[-1] <= errors[0]
    assert errors[-1] < 0.02
    # The deliberate correction is substantial and below 1.
    assert suppression < 0.9

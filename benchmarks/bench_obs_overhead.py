"""OBS — instrumentation overhead budget and the campaign perf baseline.

Two guarantees back the observability layer:

* the instrumentation must be close to free: a campaign run under a full
  in-memory tracer may cost at most 5 % more wall clock than the same
  run under the no-op default (``OVERHEAD_BUDGET``);
* every run refreshes ``BENCH_campaign.json`` at the repo root — the
  five-chip campaign wall time, measurements/sec and simulated-seconds
  per wall-second — so future perf PRs have a trajectory to beat.
"""

import json
import time
from pathlib import Path

from repro.lab.campaign import run_table1_campaign
from repro.obs import NULL_TRACER, Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_campaign.json"

#: Maximum tolerated wall-clock overhead of tracing vs the no-op default.
OVERHEAD_BUDGET = 0.05

#: Chips used for the overhead A/B (smaller than the full bench, repeated).
OVERHEAD_CHIPS = 2
OVERHEAD_REPEATS = 4


def _timed_run(tracer) -> float:
    start = time.perf_counter()
    run_table1_campaign(seed=0, n_chips=OVERHEAD_CHIPS, tracer=tracer)
    return time.perf_counter() - start


def test_bench_obs_overhead(once):
    """Tracing a campaign must cost < 5 % over the disabled default.

    The A/B runs are interleaved (disabled, enabled, disabled, ...) and
    the fastest of each side compared, so CPU warm-up and frequency
    scaling bias neither side.
    """

    def measure() -> tuple[float, float]:
        _timed_run(NULL_TRACER)  # warm-up, discarded
        disabled = float("inf")
        enabled = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            disabled = min(disabled, _timed_run(NULL_TRACER))
            enabled = min(enabled, _timed_run(Tracer()))
        return disabled, enabled

    disabled, enabled = once(measure)
    overhead = enabled / disabled - 1.0
    print(f"disabled tracer: {disabled:.3f} s   enabled tracer: {enabled:.3f} s")
    print(f"instrumentation overhead: {100.0 * overhead:+.2f} % "
          f"(budget {100.0 * OVERHEAD_BUDGET:.0f} %)")
    assert overhead < OVERHEAD_BUDGET


def test_bench_campaign_baseline(once):
    """Time the full five-chip campaign and refresh BENCH_campaign.json."""

    def timed_campaign():
        tracer = Tracer()
        start = time.perf_counter()
        result = run_table1_campaign(seed=0, tracer=tracer)
        return time.perf_counter() - start, result, tracer

    wall_s, result, tracer = once(timed_campaign)
    sim_seconds = tracer.spans("campaign")[0].sim_advanced
    baseline = {
        "bench": "bench_obs_overhead.test_bench_campaign_baseline",
        "seed": 0,
        "n_chips": len(result.chips),
        "measurements": len(result.log),
        "campaign_wall_s": round(wall_s, 3),
        "measurements_per_sec": round(len(result.log) / wall_s, 1),
        "sim_seconds": round(sim_seconds, 1),
        "sim_seconds_per_wall_second": round(sim_seconds / wall_s, 1),
        "ro_evaluations": int(tracer.metrics.value("ro.evaluations")),
        "trap_updates": int(tracer.metrics.value("bti.trap_updates")),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"campaign: {wall_s:.3f} s wall, {baseline['measurements_per_sec']} "
          f"measurements/s, {baseline['sim_seconds_per_wall_second']:,} sim s/s")
    print(f"baseline written to {BASELINE_PATH}")
    assert baseline["measurements"] > 500
    assert baseline["sim_seconds_per_wall_second"] > 1.0

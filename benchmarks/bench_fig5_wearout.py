"""FIG5 — accelerated wearout at 100/110 degC, measured vs fitted model."""

from repro.experiments import fig5


def test_bench_fig5_wearout(once):
    """Regenerate the Fig. 5 curves with model overlays and validation."""
    result = once(fig5.run, seed=0)
    result.table().print()
    print("110C model:", result.at_110c.validation.describe())
    print("100C model:", result.at_100c.validation.describe())
    assert result.hotter_wears_faster
    assert result.at_110c.validation.passed
    assert result.at_100c.validation.passed

"""TAB2 — delay change (%) for different temperature conditions."""

from repro.experiments import table2
from repro.experiments.calibration import PAPER_TARGETS


def test_bench_table2_delay_change(once):
    """Regenerate the Table 2 rows and check the calibration bands."""
    result = once(table2.run, seed=0)
    result.table().print()
    values = result.values()
    deg_110 = values["110C"][24.0]
    ratio = deg_110 / values["100C"][24.0]
    growth = deg_110 / values["110C"][3.0]
    print(f"110C @24h: {deg_110:.2f} %   110/100 ratio: {ratio:.2f}   24h/3h growth: {growth:.2f}")
    assert PAPER_TARGETS["dc_degradation_percent_110"].contains(deg_110)
    assert PAPER_TARGETS["temp_ratio_110_over_100"].contains(ratio)
    assert PAPER_TARGETS["growth_24h_over_3h"].contains(growth)

"""Determinism sanitizer — phase hashing must be close to free.

``repro campaign --sanitize`` hashes every chip's trap/RNG/DataLog state
at each phase boundary.  The hashes are only useful if they can stay on
in CI, so the budget mirrors the observability layer's: a sanitized
campaign may cost at most 5 % more wall clock than the same run with the
null sanitizer.  Every run also refreshes ``BENCH_sanitizer.json`` so
future PRs that touch the hashing path have a trajectory to beat.
"""

import json
import time
from pathlib import Path

from repro.lab.campaign import run_table1_campaign

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_sanitizer.json"

#: Maximum tolerated wall-clock overhead of --sanitize vs off.
OVERHEAD_BUDGET = 0.05

#: Chips used for the overhead A/B (smaller than the full bench, repeated).
OVERHEAD_CHIPS = 2
OVERHEAD_REPEATS = 4


def _timed_run(sanitize: bool) -> float:
    start = time.perf_counter()
    run_table1_campaign(seed=0, n_chips=OVERHEAD_CHIPS, sanitize=sanitize)
    return time.perf_counter() - start


def test_bench_sanitizer_overhead(once):
    """Sanitizing a campaign must cost < 5 % over the null sanitizer.

    The A/B runs are interleaved (off, on, off, ...) and the fastest of
    each side compared, so CPU warm-up and frequency scaling bias
    neither side.
    """

    def measure() -> tuple[float, float]:
        _timed_run(False)  # warm-up, discarded
        off = float("inf")
        on = float("inf")
        for _ in range(OVERHEAD_REPEATS):
            off = min(off, _timed_run(False))
            on = min(on, _timed_run(True))
        return off, on

    off, on = once(measure)
    overhead = on / off - 1.0
    print(f"sanitizer off: {off:.3f} s   sanitizer on: {on:.3f} s")
    print(f"sanitizer overhead: {100.0 * overhead:+.2f} % "
          f"(budget {100.0 * OVERHEAD_BUDGET:.0f} %)")
    assert overhead < OVERHEAD_BUDGET


def test_bench_sanitizer_baseline(once):
    """Time the sanitized five-chip campaign and refresh BENCH_sanitizer.json."""

    def timed_campaign():
        start = time.perf_counter()
        result = run_table1_campaign(seed=0, sanitize=True)
        return time.perf_counter() - start, result

    wall_s, result = once(timed_campaign)
    baseline = {
        "bench": "bench_sanitizer_overhead.test_bench_sanitizer_baseline",
        "seed": 0,
        "n_chips": len(result.chips),
        "measurements": len(result.log),
        "phase_hashes": len(result.state_hashes),
        "campaign_wall_s": round(wall_s, 3),
        "measurements_per_sec": round(len(result.log) / wall_s, 1),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"sanitized campaign: {wall_s:.3f} s wall, "
          f"{baseline['phase_hashes']} phase hashes")
    print(f"baseline written to {BASELINE_PATH}")
    # Per-chip baseline plus every schedule phase, incl. chip 5's
    # re-stress and 12 h recovery (AR110N12).
    assert baseline["phase_hashes"] == 16
    assert baseline["measurements"] > 500

"""Extension — the paper's EM limitation, quantified.

The paper concedes its model "ignores other aging effects, such as
Electromigration".  This bench runs the circadian schedule while tracking
both mechanisms: BTI delay shift (healable) and EM damage (not).  The
healing schedule rejuvenates the transistor side deeply while the metal
keeps wearing — *and* sleeping hot with the rail gated is EM-safe, because
no current flows.
"""

from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
from repro.core.rejuvenator import Rejuvenator
from repro.device.electromigration import EmWearState
from repro.fpga.chip import FpgaChip
from repro.units import celsius, hours


def run(seed: int = 0):
    """Healed vs baseline, both with an EM wear ledger alongside."""
    operating = OperatingPoint(temperature_c=110.0)
    knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    total_active = hours(48.0)
    results = {}
    for name, policy in (
        ("baseline", NoRecoveryPolicy(segment=hours(1.5))),
        ("healed", ProactivePolicy(knobs, period=hours(7.5))),
    ):
        chip = FpgaChip(name, seed=seed)
        rejuvenator = Rejuvenator(chip, operating, max_segment=hours(1.5))
        trajectory = rejuvenator.run(policy, total_active)
        em = EmWearState()
        # Replay the schedule into the EM ledger: current flows only while
        # active; gated sleep (even hot) adds no EM damage.
        for i in range(1, trajectory.times.size):
            duration = trajectory.times[i] - trajectory.times[i - 1]
            active = not trajectory.sleeping[i]
            em.stress(duration, 1.0 if active else 0.0, celsius(110.0))
        # The healed schedule's state of record is post-rejuvenation (the
        # last trough); the baseline never sleeps, so its final state is it.
        troughs = trajectory.cycle_troughs()
        shift = float(troughs[-1]) if troughs.size else trajectory.final_shift
        results[name] = (shift, em.damage)
    return results


def test_bench_ext_em_limitation(once):
    """Healing fixes BTI, not EM — and EM is identical at equal work."""
    results = once(run, seed=0)
    table = Table(
        "BTI (healable) vs EM (irreversible) over 48 h of work @110 degC",
        ["schedule", "BTI dTd (ns)", "EM damage (% of life)"],
        fmt="{:.3f}",
    )
    for name, (shift, damage) in results.items():
        table.add_row(name, shift * 1e9, damage * 100.0)
    table.print()
    base_shift, base_damage = results["baseline"]
    heal_shift, heal_damage = results["healed"]
    # BTI side: healing wins decisively.
    assert heal_shift < 0.5 * base_shift
    # EM side: equal delivered work -> equal damage; healing cannot touch it.
    assert heal_damage == base_damage
    assert heal_damage > 0.0

"""Extension — virtual circadian rhythm (the paper's future work).

The adaptive controller tunes the active:sleep ratio alpha online so the
chip wakes from every sleep with a target residual shift — no more sleep
than necessary, no aging sensor beyond the readout the schedule already
takes.
"""

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.virtual_rhythm import VirtualCircadianRhythm
from repro.fpga.chip import FpgaChip
from repro.units import hours


def run(seed: int = 0, n_cycles: int = 12, target: float = 1.5e-9):
    chip = FpgaChip("rhythm", seed=seed)
    rhythm = VirtualCircadianRhythm(
        target_shift=target,
        period=hours(7.5),
        knobs=RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0),
        operating=OperatingPoint(temperature_c=110.0),
    )
    return rhythm.run(chip, n_cycles=n_cycles)


def test_bench_ext_virtual_rhythm(once):
    """The controller converges and holds the wake-up residual on target."""
    target = 1.5e-9
    result = once(run, seed=0, n_cycles=12, target=target)
    table = Table(
        "Virtual circadian rhythm: adaptive alpha, residual target 1.5 ns",
        ["cycle", "alpha", "peak dTd (ns)", "trough dTd (ns)"],
        fmt="{:.2f}",
    )
    for cycle in result.cycles:
        table.add_row(cycle.index + 1, cycle.alpha, cycle.peak_shift * 1e9,
                      cycle.trough_shift * 1e9)
    table.print()
    cycles = np.arange(1, len(result.cycles) + 1, dtype=float)
    print(line_plot(
        [
            Series("trough dTd (ns)", cycles, result.troughs() * 1e9),
            Series("alpha", cycles, result.alphas()),
        ],
        title="convergence", x_label="cycle", y_label="value", height=12,
    ))
    assert result.converged
    # The controller neither over-sleeps nor under-sleeps at steady state.
    assert np.all(result.troughs()[-3:] <= target * 1.15)
    assert result.final_alpha > 1.0

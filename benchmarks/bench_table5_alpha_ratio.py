"""TAB5 — active:sleep ratio invariance (alpha = 4)."""

from repro.experiments import table5


def test_bench_table5_alpha_ratio(once):
    """Regenerate Table 5: same margin relaxed for 24/6 and 48/12 hours."""
    result = once(table5.run, seed=0)
    result.table().print()
    print(f"gap: {result.gap_points:.1f} percentage points")
    assert result.ratio_invariance_holds

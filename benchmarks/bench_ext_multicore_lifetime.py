"""Extension — multi-core run-to-failure under both wear mechanisms.

Projects each scheduler until the worst core's BTI shift eats the timing
budget (EM tracked alongside): the system-level version of the lifetime
claim, with the EM ledger showing what healing cannot buy.
"""

from repro.analysis.tables import Table
from repro.multicore.core_model import CoreParameters
from repro.multicore.lifetime import compare_scheduler_lifetimes
from repro.multicore.scheduler import (
    BaselineScheduler,
    CircadianScheduler,
    HeaterAwareScheduler,
    RoundRobinScheduler,
)
from repro.multicore.system import MulticoreSystem
from repro.multicore.workload import ConstantWorkload


def run(seed: int = 0):
    def make_system():
        return MulticoreSystem(core_params=CoreParameters(), seed=seed)

    return compare_scheduler_lifetimes(
        make_system,
        {
            "baseline": BaselineScheduler(),
            "round-robin": RoundRobinScheduler(),
            "circadian": CircadianScheduler(),
            "heater-aware": HeaterAwareScheduler(),
        },
        ConstantWorkload(6),
        bti_budget=1.4e-12,
        horizon_epochs=24 * 14,
    )


def test_bench_ext_multicore_lifetime(once):
    """Self-healing schedulers survive the BTI budget longest."""
    results = once(run, seed=0)
    table = Table(
        "Multi-core lifetime to a 1.4 ps worst-core BTI budget",
        ["scheduler", "epochs survived", "limited by", "worst EM damage (ppm)"],
        fmt="{:.2f}",
    )
    for name, life in results.items():
        table.add_row(
            name, life.epochs_survived, life.limited_by,
            life.final_worst_em_damage * 1e6,
        )
    table.print()
    survived = {name: life.epochs_survived for name, life in results.items()}
    assert survived["heater-aware"] >= survived["circadian"] > survived["baseline"]
    # Everything here is BTI-limited or survives; EM keeps ticking either way.
    assert all(life.final_worst_em_damage > 0.0 for life in results.values())

"""Extension — dark silicon: TDP-forced sleep as free healing.

The paper's Sec. 6.2 motivation: at fixed power budgets some cores must
stay dark.  The bench sweeps the TDP budget and shows that a circadian
scheduler converts the mandatory dark fraction into worst-core margin,
while a passive scheduler merely idles it.
"""

from repro.analysis.tables import Table
from repro.multicore.metrics import compute_metrics
from repro.multicore.scheduler import CircadianScheduler, RoundRobinScheduler
from repro.multicore.system import MulticoreSystem
from repro.multicore.tdp import TdpConstrainedScheduler, TdpConstraint
from repro.multicore.workload import ConstantWorkload
from repro.units import hours


def run(seed: int = 0, n_epochs: int = 24 * 7):
    results = {}
    for budget in (85.0, 60.0, 45.0):
        constraint = TdpConstraint(budget_watts=budget)
        for name, inner in (
            ("passive", RoundRobinScheduler()),
            ("circadian", CircadianScheduler()),
        ):
            system = MulticoreSystem(seed=seed)
            scheduler = TdpConstrainedScheduler(inner, constraint)
            history = system.run(
                scheduler, ConstantWorkload(8), n_epochs=n_epochs,
                epoch_duration=hours(1.0),
            )
            results[(budget, name)] = (
                compute_metrics(history),
                constraint.dark_fraction(8),
            )
    return results


def test_bench_ext_dark_silicon(once):
    """More dark silicon -> more healing headroom for circadian schedules."""
    results = once(run, seed=0)
    table = Table(
        "Dark silicon: TDP budget sweep (demand 8/8 cores, one week)",
        ["TDP (W)", "dark fraction", "scheduler", "worst dTd (ps)",
         "work (core-epochs)"],
        fmt="{:.2f}",
    )
    for (budget, name), (metrics, dark) in results.items():
        table.add_row(budget, dark, name, metrics.worst_shift * 1e12,
                      metrics.work_epochs)
    table.print()
    for budget in (60.0, 45.0):
        passive, __ = results[(budget, "passive")]
        circadian, __ = results[(budget, "circadian")]
        # Equal work delivered under the same budget...
        assert passive.work_epochs == circadian.work_epochs
        # ...but the circadian scheduler turns dark slots into margin.
        assert circadian.worst_shift < passive.worst_shift
    # A tighter budget gives circadian scheduling more healing headroom.
    relaxed, __ = results[(85.0, "circadian")]
    tight, __ = results[(45.0, "circadian")]
    assert tight.worst_shift < relaxed.worst_shift

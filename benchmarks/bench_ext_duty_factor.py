"""Extension — the AC-BTI duty-factor curve.

Degradation vs stress duty cycle after 24 h at 110 degC: near zero for a
mostly-relaxed waveform, rising with duty, with the characteristic jump
toward the DC endpoint that measured duty-factor data shows (and that the
calibrated AC capture-suppression reproduces).
"""

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.bti.traps import TrapParameters, TrapPopulation
from repro.bti.waveform_sim import duty_factor_curve
from repro.units import celsius, hours


def run(seed: int = 3):
    params = TrapParameters(mean_trap_count=60.0)
    return duty_factor_curve(
        lambda: TrapPopulation(params, n_owners=4, rng=seed),
        duration=hours(24.0),
        stress_voltage=1.2,
        temperature=celsius(110.0),
        duties=(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
    )


def test_bench_ext_duty_factor(once):
    """Monotone duty dependence with the DC jump."""
    curve = once(run)
    dc = curve[1.0]
    table = Table(
        "Duty-factor curve (24 h @110 degC, normalised to DC)",
        ["duty", "dVth / dVth(DC)"],
        fmt="{:.3f}",
    )
    for duty, shift in curve.items():
        table.add_row(f"{duty:g}", shift / dc)
    table.print()
    duties = sorted(curve)
    print(line_plot(
        [Series("dVth/DC", np.array(duties), np.array([curve[d] / dc for d in duties]))],
        title="duty factor", x_label="stress duty", y_label="norm", height=10,
    ))
    values = [curve[d] for d in duties]
    # Monotone non-decreasing in duty; zero duty ages ~nothing.
    assert all(a <= b * 1.001 for a, b in zip(values, values[1:]))
    assert curve[0.0] < 0.02 * dc
    # The characteristic DC jump: the last step (0.9 -> 1.0) is larger
    # than the 0.5 -> 0.75 step despite covering less duty range.
    assert (curve[1.0] - curve[0.9]) > (curve[0.75] - curve[0.5])

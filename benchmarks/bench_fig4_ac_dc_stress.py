"""FIG4 — AC vs DC stress over 24 h at 110 degC."""

from repro.experiments import fig4
from repro.experiments.calibration import PAPER_TARGETS


def test_bench_fig4_ac_dc_stress(once):
    """Regenerate the Fig. 4 series and the 'AC about half of DC' claim."""
    result = once(fig4.run, seed=0)
    result.table().print()
    band = PAPER_TARGETS["ac_dc_ratio"]
    print(
        f"AC/DC at 24 h: {result.ac_dc_ratio:.3f} "
        f"(paper: {band.paper_value}, band [{band.low}, {band.high}])"
    )
    assert result.in_band
    # Fast-then-slow: over half the total degradation in the first half.
    from repro.units import hours

    for series in (result.ac, result.dc):
        assert series.at(hours(12.0)) > 0.55 * series.final

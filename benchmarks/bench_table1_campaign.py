"""TAB1 — regenerate the paper's Table 1 campaign (the full schedule)."""

from repro.experiments import table1
from repro.lab.campaign import run_table1_campaign


def test_bench_table1_campaign(once):
    """Run the full five-chip Table-1 schedule from scratch."""
    result = once(run_table1_campaign, seed=0)
    table1.schedule_table().print()
    print(f"measurements recorded: {len(result.log)}")
    cases = result.log.cases()
    for expected in ("AS110AC24", "AS110DC24", "AS100DC24", "AS110DC48",
                     "R20Z6", "AR20N6", "AR110Z6", "AR110N6", "AR110N12"):
        assert expected in cases
    assert len(result.log) > 500

"""PERF — batched fleet engine vs the sequential campaign baseline.

Two legs:

* **bit-identity** — the 5-chip exact-fidelity fleet must reproduce the
  sequential ``run_table1_campaign`` record stream bit-for-bit (the
  facade contract that lets the whole lab stack run against the batch);
* **throughput** — a 200-chip binned-fidelity lot must clear 20x the
  sequential baseline's measurements/s (454.2/s in the seed ledger).
  The run refreshes ``BENCH_fleet_campaign.json`` at the repo root and
  folds the headline numbers into ``BENCH_campaign.json`` next to the
  sequential baseline, so both trajectories live in one file.

Run directly for a smoke check (CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_campaign.py -q
"""

import json
import time
from pathlib import Path

from repro.lab.campaign import run_table1_campaign
from repro.lab.fleet import run_fleet_campaign
from repro.obs import Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
FLEET_BASELINE_PATH = REPO_ROOT / "BENCH_fleet_campaign.json"
CAMPAIGN_BASELINE_PATH = REPO_ROOT / "BENCH_campaign.json"

#: Chips in the throughput leg — large enough that per-batch setup
#: amortises, small enough for a CI smoke.
N_CHIPS = 200

#: The sequential baseline this engine must beat (BENCH_campaign.json
#: seed entry) and the acceptance multiple.
SEQUENTIAL_MEAS_PER_SEC = 454.2
SPEEDUP_FLOOR = 20.0


def test_bench_fleet_bit_identity(once):
    """5-chip exact fleet == sequential campaign, record for record."""

    def measure():
        sequential = run_table1_campaign(seed=0)
        fleet = run_fleet_campaign(seed=0, n_chips=5, fidelity="exact",
                                   sanitize=True)
        return sequential, fleet

    sequential, fleet = once(measure)
    assert list(sequential.log) == list(fleet.log)
    assert sequential.fresh_delays == fleet.fresh_delays
    print(f"5-chip fleet bit-identical to sequential "
          f"({len(fleet.log)} records, {len(fleet.state_hashes)} phase hashes)")


def test_bench_fleet_campaign(once):
    """Time the 200-chip binned lot and refresh the fleet baseline files."""

    def timed_fleet():
        tracer = Tracer()
        start = time.perf_counter()
        result = run_fleet_campaign(seed=0, n_chips=N_CHIPS,
                                    fidelity="binned", collect="summary",
                                    tracer=tracer)
        return time.perf_counter() - start, result, tracer

    wall_s, result, tracer = once(timed_fleet)
    meas_per_sec = result.total_measurements / wall_s
    sim_seconds = tracer.spans("campaign")[0].sim_advanced
    speedup = meas_per_sec / SEQUENTIAL_MEAS_PER_SEC

    entry = {
        "bench": "bench_fleet_campaign.test_bench_fleet_campaign",
        "seed": 0,
        "n_chips": N_CHIPS,
        "fidelity": result.fidelity,
        "shards": result.shards,
        "measurements": result.total_measurements,
        "campaign_wall_s": round(wall_s, 3),
        "measurements_per_sec": round(meas_per_sec, 1),
        "sim_seconds": round(sim_seconds, 1),
        "sim_seconds_per_wall_second": round(sim_seconds / wall_s, 1),
        "speedup_vs_sequential": round(speedup, 1),
    }
    FLEET_BASELINE_PATH.write_text(json.dumps(entry, indent=2) + "\n")

    # Fold the headline into the sequential baseline file (flat keys the
    # rolling-baseline check ignores), preserving the existing entry.
    try:
        campaign_entry = json.loads(CAMPAIGN_BASELINE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        campaign_entry = {}
    campaign_entry.update(
        {
            "fleet_n_chips": N_CHIPS,
            "fleet_fidelity": result.fidelity,
            "fleet_measurements_per_sec": entry["measurements_per_sec"],
            "fleet_speedup_vs_sequential": entry["speedup_vs_sequential"],
        }
    )
    CAMPAIGN_BASELINE_PATH.write_text(json.dumps(campaign_entry, indent=2) + "\n")

    print(f"fleet campaign: {N_CHIPS} chips, {result.total_measurements} "
          f"measurements in {wall_s:.2f} s wall "
          f"({entry['measurements_per_sec']:,} meas/s, "
          f"{speedup:.1f}x sequential)")
    print(f"baselines written to {FLEET_BASELINE_PATH.name} and "
          f"{CAMPAIGN_BASELINE_PATH.name}")
    assert result.total_measurements > 20_000
    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet throughput {meas_per_sec:.0f} meas/s is below "
        f"{SPEEDUP_FLOOR:.0f}x the {SEQUENTIAL_MEAS_PER_SEC} meas/s "
        f"sequential baseline"
    )

"""Ablation — margin relaxed as a function of each recovery knob.

Not a paper artefact: sweeps the three knobs (alpha, sleep voltage, sleep
temperature) one at a time around the paper's operating point, showing the
design space the paper's Sec. 7 calls "a good opportunity for cross-layer
optimisation".
"""


from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.planner import CircadianPlanner
from repro.fpga.chip import FpgaChip
from repro.units import hours


def sweep(seed: int = 0) -> dict[str, dict[float, float]]:
    """Margin relaxed per knob setting (other knobs at paper values)."""
    chip = FpgaChip("ablation", seed=seed)
    operating = OperatingPoint(temperature_c=110.0)
    total_active = hours(24.0)
    results: dict[str, dict[float, float]] = {"alpha": {}, "voltage": {}, "temperature": {}}

    def margin(knobs: RecoveryKnobs) -> float:
        planner = CircadianPlanner(knobs, operating, period=hours(7.5))
        comparison = planner.compare_against_baseline(
            chip, total_active, max_segment=hours(1.5)
        )
        return comparison.margin_relaxed

    for alpha in (2.0, 4.0, 8.0):
        results["alpha"][alpha] = margin(
            RecoveryKnobs(alpha=alpha, sleep_voltage=-0.3, sleep_temperature_c=110.0)
        )
    for voltage in (0.0, -0.15, -0.3):
        results["voltage"][voltage] = margin(
            RecoveryKnobs(alpha=4.0, sleep_voltage=voltage, sleep_temperature_c=110.0)
        )
    for temp in (20.0, 60.0, 110.0):
        results["temperature"][temp] = margin(
            RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=temp)
        )
    return results


def test_bench_ablation_knobs(once):
    """Sweep each knob and confirm its monotone effect on margin."""
    results = once(sweep, seed=0)
    table = Table(
        "Ablation — design margin relaxed per recovery knob",
        ["knob", "setting", "margin relaxed"],
        fmt="{:.3f}",
    )
    for knob, settings in results.items():
        for value, margin in settings.items():
            table.add_row(knob, value, margin)
    table.print()
    # More sleep (smaller alpha) relaxes more margin.
    assert results["alpha"][2.0] > results["alpha"][8.0]
    # A more negative rail relaxes more margin.
    assert results["voltage"][-0.3] > results["voltage"][0.0]
    # A hotter sleep relaxes more margin.
    assert results["temperature"][110.0] > results["temperature"][20.0]

"""Extension — silicon-odometer tracking through a stress/heal cycle.

Reactive recovery needs an aging sensor (paper Sec. 2.2); this bench runs
the odometer RO pair through the paper's AS110DC24 + AR110N6 schedule and
quantifies how closely the differential estimate tracks the ground truth
only a virtual bench can see.
"""

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.fpga.ring_oscillator import StressMode
from repro.fpga.sensors import SiliconOdometer
from repro.units import celsius, hours


def run(seed: int = 0):
    sensor = SiliconOdometer(seed=seed)
    offset = sensor.calibrate(rng=0)
    times, estimates, truths = [], [], []
    # 24 h stress sampled every 3 h, then 6 h recovery sampled every 1 h.
    for step in range(8):
        sensor.experience(hours(3.0), celsius(110.0), 1.2, mode=StressMode.DC)
        reading = sensor.measure(celsius(110.0), rng=step)
        times.append((step + 1) * 3.0)
        estimates.append(reading.degradation - offset)
        truths.append(sensor.true_degradation())
    for step in range(6):
        sensor.experience(hours(1.0), celsius(110.0), -0.3)
        reading = sensor.measure(celsius(110.0), rng=100 + step)
        times.append(24.0 + step + 1.0)
        estimates.append(reading.degradation - offset)
        truths.append(sensor.true_degradation())
    return np.array(times), np.array(estimates), np.array(truths)


def test_bench_ext_sensor_tracking(once):
    """The odometer estimate follows the truth through stress and healing."""
    times, estimates, truths = once(run, seed=0)
    table = Table(
        "Silicon odometer vs ground truth (degradation %)",
        ["time (h)", "sensor", "truth", "error (pp)"],
        fmt="{:.3f}",
    )
    for t, e, g in zip(times, estimates, truths):
        table.add_row(f"{t:.0f}", e * 100, g * 100, (e - g) * 100)
    table.print()
    print(line_plot(
        [
            Series("sensor", times, estimates * 100),
            Series("truth", times, truths * 100),
        ],
        title="odometer tracking", x_label="hours", y_label="deg %", height=12,
    ))
    errors = np.abs(estimates - truths)
    # Tracking error bounded well below the signal.
    assert errors.max() < 0.35 * truths.max()
    # The sensor sees the recovery phase turn the curve around.
    assert estimates[-1] < estimates[7]

"""FIG3 — ring-oscillator test configuration and counter arithmetic."""

from repro.experiments import fig3


def test_bench_fig3_test_configuration(once):
    """Instantiate the Fig. 3 chain and verify its operating point."""
    result = once(fig3.run, seed=0)
    result.table().print()
    assert result.fits_counter
    assert result.chain_consistent
    # The +/-5-count readout spec keeps measurement noise far below the
    # ~2 % aging signal the experiments resolve.
    assert result.noise_floor < 0.005

"""FIG10 — multi-core self-healing: scheduler ladder + on-chip heaters."""

from repro.experiments import fig10


def test_bench_fig10_multicore(once):
    """Regenerate the Fig. 10 quantitative scheduler comparison."""
    result = once(fig10.run, seed=0, n_epochs=24 * 14)
    result.table().print()
    print(
        f"on-chip heater effect (paper's cores 3 & 7 asleep): sleeping cores "
        f"sit {result.neighbour_heating_c:.1f} degC above ambient"
    )
    print(
        f"heater-aware worst-core margin gain over baseline: "
        f"{result.heater_aware_margin_gain:.1%} at "
        f"{result.energy_overhead:.2%} energy overhead"
    )
    assert result.ladder_holds
    assert result.heater_aware_margin_gain > 0.2
    assert result.neighbour_heating_c > 15.0
    assert result.energy_overhead < 0.05

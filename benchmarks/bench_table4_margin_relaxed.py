"""TAB4 — design margin relaxed per recovery condition (72.4 % headline)."""

from repro.experiments import table4


def test_bench_table4_margin_relaxed(once):
    """Regenerate the Table 4 rows and check every calibration band."""
    result = once(table4.run, seed=0)
    result.table().print()
    assert result.all_in_band
    assert result.combined_knobs_highest

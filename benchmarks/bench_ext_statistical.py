"""Extension — statistical aging prediction (Velamala-style TD statistics).

Not a paper artefact: quantifies the statistical dimension of the TD
model the paper builds on — device-to-device aging spread, the guardband
needed to cover 99 % of devices, and the sigma/mu vs device-size law.
"""

from repro.analysis.tables import Table
from repro.bti.conditions import BiasCondition, BiasPhase
from repro.bti.statistical import (
    margin_at_quantile,
    sample_device_shifts,
    shift_statistics,
    sigma_mu_relation,
)
from repro.units import hours

STRESS = BiasPhase(duration=hours(24.0), bias=BiasCondition.at_celsius(1.2, 110.0))


def run(n_devices: int = 500):
    shifts = sample_device_shifts([STRESS], n_devices, rng=0)
    stats = shift_statistics(shifts)
    guardband = margin_at_quantile(shifts, coverage=0.99)
    relation = sigma_mu_relation([STRESS], trap_counts=(10.0, 40.0, 160.0),
                                 n_devices=300, rng=1)
    return stats, guardband, relation


def test_bench_ext_statistical(once):
    """Population statistics after the paper's 24 h accelerated stress."""
    stats, guardband, relation = once(run)
    table = Table(
        "Statistical aging: 500 devices after 24 h DC stress @110 degC",
        ["quantity", "value (mV)"],
        fmt="{:.2f}",
    )
    table.add_row("mean dVth", stats.mean * 1e3)
    table.add_row("sigma", stats.std * 1e3)
    table.add_row("median", stats.quantiles[0.5] * 1e3)
    table.add_row("p99 (guardband)", guardband * 1e3)
    table.print()

    size_table = Table(
        "sigma/mu vs device size (mean trap count)",
        ["trap count", "sigma/mu"],
        fmt="{:.3f}",
    )
    for count, rel in relation.items():
        size_table.add_row(f"{count:.0f}", rel)
    size_table.print()

    # Designing for the mean under-margins: p99 well above the mean.
    assert guardband > 1.2 * stats.mean
    # Scaled-down devices age less predictably.
    counts = sorted(relation)
    assert relation[counts[0]] > relation[counts[-1]]

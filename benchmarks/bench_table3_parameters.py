"""TAB3 — extracted first-order model parameters."""

from repro.experiments import table3


def test_bench_table3_parameters(once):
    """Extract (beta, A, C) and (phi2, k1, k2) from the measured curves."""
    result = once(table3.run, seed=0)
    result.stress_table().print()
    result.recovery_table().print()
    assert result.all_fits_acceptable

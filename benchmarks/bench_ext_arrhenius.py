"""Extension — Arrhenius extraction and 10-year use-condition projection.

The engineering payoff of the paper's accelerated methodology: sweep
temperature, extract the thermal law of the aging rate constant, validate
it on a held-out temperature, and project a decade at use conditions with
and without the paper's healing factor.
"""

import pytest

from repro.experiments import arrhenius


def test_bench_ext_voltage_acceleration(once):
    """Extract the field-acceleration coefficient (Eq. 2's B V/kT term)."""
    result = once(arrhenius.run_voltage_sweep, seed=0)
    result.table().print()
    print(
        f"extracted gamma = {result.gamma_per_volt:.2f}/V "
        f"(microscopic capture gamma: 5.00/V), R^2 = {result.r_squared:.4f}"
    )
    assert result.gamma_per_volt == pytest.approx(5.0, abs=1.5)
    assert result.r_squared > 0.99


def test_bench_ext_arrhenius(once):
    """Extract Ea, validate on holdout, project ten years."""
    result = once(arrhenius.run, seed=0)
    result.beta_table().print()
    print(
        f"extracted Ea = {result.effective_ea_ev:.2f} eV "
        f"(microscopic capture Ea: 0.90 eV), "
        f"rate-law R^2 = {result.rate_law.r_squared:.3f}"
    )
    print(f"holdout (95 degC): {result.holdout_validation.describe()}\n")
    result.projection_table().print()
    assert result.holdout_validation.passed
    assert 0.6 <= result.effective_ea_ev <= 1.3
    assert result.rate_law.r_squared > 0.98

"""Extension — recovery spectroscopy closes the loop on the trap model.

Runs the paper's stress/recover sequence on a large trap population,
extracts the emission spectrum d(RD)/d(log t) from the *measured* recovery
transient, and checks it against the oracle CET view of the same
population — the virtual equivalent of validating a TD model against
recovery-transient spectroscopy.
"""

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.bti.cet import cet_map, emission_spectrum, occupied_emission_histogram
from repro.bti.conditions import BiasCondition
from repro.bti.traps import TrapParameters, TrapPopulation
from repro.units import celsius, hours

RECOVER = BiasCondition.at_celsius(-0.3, 110.0)


def run(seed: int = 4):
    population = TrapPopulation(
        TrapParameters(mean_trap_count=800.0), n_owners=1, rng=seed
    )
    population.evolve(hours(24.0), 1.2, celsius(110.0))
    oracle_edges = np.linspace(0.0, 5.0, 6)
    oracle = occupied_emission_histogram(population, RECOVER, oracle_edges)
    peak = population.delta_vth()[0]
    times, recovered = [], []
    t = 0.0
    for step in np.diff(np.logspace(0.0, np.log10(hours(6.0)), 40), prepend=0.0):
        population.evolve(float(step), RECOVER.stress_voltage, RECOVER.temperature)
        t += float(step)
        times.append(t)
        recovered.append(peak - population.delta_vth()[0])
    spectrum = emission_spectrum(np.array(times), np.array(recovered))
    cmap = cet_map(population, RECOVER)
    return spectrum, oracle, oracle_edges, cmap, np.array(times), np.array(recovered)


def test_bench_ext_cet_spectroscopy(once):
    """Measured emission spectrum matches the oracle trap population."""
    spectrum, oracle, edges, cmap, times, recovered = once(run)
    table = Table(
        "Emission activity per log-time decade (recovery @110 degC, -0.3 V)",
        ["decade (log10 s)", "measured (mV)", "oracle (mV)"],
        fmt="{:.3f}",
    )
    # Measured emission inside a decade bin = RD(upper edge) - RD(lower
    # edge), interpolated in log time over the transient's coverage.
    log_t = np.log10(times)
    measured_bins = []
    for lo, hi, oracle_value in zip(edges[:-1], edges[1:], oracle):
        lo_c = float(np.clip(lo, log_t[0], log_t[-1]))
        hi_c = float(np.clip(hi, log_t[0], log_t[-1]))
        measured = float(np.interp(hi_c, log_t, recovered) - np.interp(lo_c, log_t, recovered))
        measured_bins.append(measured)
        table.add_row(f"[{lo:.0f}, {hi:.0f})", measured * 1e3, oracle_value * 1e3)
    table.print()
    print(line_plot(
        [Series("d(RD)/dlog t (mV/dec)", spectrum.log10_time_centers,
                spectrum.density * 1e3)],
        title="recovery emission spectrum", x_label="log10 time (s)",
        y_label="mV/dec", height=10,
    ))
    # The spectrum's activity peak sits in the window the oracle says is
    # busiest (within one decade).
    # The log-uniform tau_e population predicts a nearly flat spectrum;
    # assert the measured per-decade mass tracks the oracle in every
    # decade fully covered by the 6 h transient.
    import pytest

    for i in (1, 2, 3):
        assert measured_bins[i] == pytest.approx(oracle[i], rel=0.4)
    # And the spectral density never goes negative (pure recovery).
    assert np.all(spectrum.density >= -1e-12)

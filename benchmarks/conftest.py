"""Benchmark harness configuration.

Each bench regenerates one paper artefact, prints the same rows/series the
paper reports (run pytest with ``-s`` to see them; they are also printed
into the captured output), and asserts the DESIGN.md shape bands.

The Table-1 campaign that most artefacts read from is cached per seed, so
the suite pays for the full five-chip simulation once.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner

"""FIG8 — delay change during recovery, four conditions + model."""

from repro.experiments import fig8


def test_bench_fig8_recovery_trajectories(once):
    """Regenerate the Fig. 8 trajectories and model overlays."""
    result = once(fig8.run, seed=0)
    result.table().print()
    assert result.combined_knobs_win
    assert result.ordering_holds
    assert result.models_validate

"""FIG7 — recovered delay at 0/-0.3 V: the temperature knob."""

from repro.experiments import fig7


def test_bench_fig7_recovery_temperature(once):
    """Regenerate both Fig. 7 panels (RD vs time, 20 vs 110 degC)."""
    result = once(fig7.run, seed=0)
    result.table().print()
    assert result.heat_accelerates_at_0v
    assert result.heat_accelerates_at_negative

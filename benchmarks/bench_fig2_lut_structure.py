"""FIG2 — pass-transistor LUT structure and stress mapping."""

from repro.experiments import fig2


def test_bench_fig2_lut_structure(once):
    """Enumerate the LUT and verify the paper's worked example."""
    result = once(fig2.run)
    result.inventory_table().print()
    result.stress_table().print()
    assert result.paper_example_holds
    assert result.hypothesis2_off_path_has_no_delay_weight

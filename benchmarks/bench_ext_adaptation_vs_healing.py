"""Extension — adaptation alone vs accelerated self-healing.

The paper's Sec. 2 argument, quantified: an adaptive system re-times its
clock to the aged path and keeps functioning, but becomes sluggish;
self-healing repairs the path so the adaptive controller keeps shipping
(nearly) the fresh clock.  Both systems deliver the same work and use the
same ideal adaptive controller — the only difference is healing.
"""

from repro.analysis.tables import Table
from repro.core.adaptation import AdaptiveClockController
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.policies import NoRecoveryPolicy, ProactivePolicy
from repro.core.rejuvenator import Rejuvenator
from repro.fpga.chip import FpgaChip
from repro.units import hours


def run(seed: int = 0):
    controller = AdaptiveClockController(safety_margin=0.03)
    operating = OperatingPoint(temperature_c=110.0)
    knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    traces = {}
    for name, policy in (
        ("adaptation only", NoRecoveryPolicy(segment=hours(1.5))),
        ("adaptation + healing", ProactivePolicy(knobs, period=hours(7.5))),
    ):
        chip = FpgaChip(name, seed=seed)
        trajectory = Rejuvenator(chip, operating, max_segment=hours(1.5)).run(
            policy, hours(48.0)
        )
        traces[name] = controller.trace_from_trajectory(
            trajectory.active_times, trajectory.delay_shifts, chip.fresh_path_delay
        )
    return traces


def test_bench_ext_adaptation_vs_healing(once):
    """Healing keeps the delivered clock near fresh; adaptation decays."""
    traces = once(run, seed=0)
    table = Table(
        "Adaptation vs healing (48 h of work @110 degC, same controller)",
        ["system", "fresh clock (MHz)", "final clock (MHz)",
         "mean clock (MHz)", "performance loss"],
        fmt="{:.3f}",
    )
    for name, trace in traces.items():
        table.add_row(
            name,
            trace.fresh_frequency / 1e6,
            trace.final_frequency / 1e6,
            trace.mean_frequency() / 1e6,
            trace.performance_loss,
        )
    table.print()
    adaptive = traces["adaptation only"]
    healed = traces["adaptation + healing"]
    assert healed.mean_frequency() > adaptive.mean_frequency()
    assert healed.performance_loss < adaptive.performance_loss
    # Work-weighted clock loss (what users experience over the product's
    # life): healing claws back a large share of it — "sluggish" quantified.
    # Note the healed trace *ends* on a stress peak; the average is the
    # fair comparison.
    adaptive_mean_loss = 1.0 - adaptive.mean_frequency() / adaptive.fresh_frequency
    healed_mean_loss = 1.0 - healed.mean_frequency() / healed.fresh_frequency
    assert healed_mean_loss < 0.8 * adaptive_mean_loss

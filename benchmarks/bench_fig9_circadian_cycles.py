"""FIG9 — wearout vs accelerated recovery over a periodic schedule."""

from repro.experiments import fig9


def test_bench_fig9_circadian_cycles(once):
    """Regenerate the Fig. 9 saw-tooth vs unmitigated-aging comparison."""
    result = once(fig9.run, seed=0, n_cycles=8)
    result.table().print()
    print(
        f"envelope margin relaxed vs no-healing baseline: "
        f"{result.comparison.margin_relaxed:.1%}; "
        f"per-cycle recovery at steady state: "
        f"{result.comparison.end_recovery_fraction:.1%}"
    )
    assert result.envelope_bounded
    assert result.healed_stays_below_baseline

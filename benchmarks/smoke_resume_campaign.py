"""SMOKE — kill a checkpointed campaign mid-run, resume, compare logs.

Guards the checkpoint/resume contract end to end, the way a real outage
exercises it: a campaign subprocess writing checkpoints is SIGKILLed
once its first cases have landed, then resumed in-process.  The resumed
``DataLog`` must be bit-identical to an uninterrupted run — generation
snapshots mean a kill at *any* instant leaves a consistent checkpoint.

If the subprocess finishes before the kill window opens (fast machine),
the test degrades to resuming a complete checkpoint, which must still
reproduce the reference log from its shards.

Run directly (CI does)::

    PYTHONPATH=src python -m pytest benchmarks/smoke_resume_campaign.py -q
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.lab.campaign import run_table1_campaign

ROOT = Path(__file__).resolve().parent.parent

SEED = 7
N_CHIPS = 2

#: Checkpointed cases after which the campaign is killed (chip-1's
#: baseline + first case land first with --workers 1).
KILL_AFTER_CASES = 2


def _completed_cases(manifest_path: Path) -> int:
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        # Not written yet, or caught mid-replace — treat as no progress.
        return 0
    return sum(len(cases) for cases in manifest.get("completed", {}).values())


def test_kill_mid_campaign_then_resume(tmp_path):
    checkpoint = tmp_path / "checkpoint"
    manifest = checkpoint / "manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign",
            "--seed", str(SEED), "--chips", str(N_CHIPS), "--workers", "1",
            "--checkpoint", str(checkpoint), "--quiet",
        ],
        cwd=ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed = False
    try:
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break  # finished before the kill window — see module docstring
            if _completed_cases(manifest) >= KILL_AFTER_CASES:
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=30.0)
                killed = True
                break
            time.sleep(0.05)
        else:
            raise AssertionError("campaign made no checkpoint progress in 300 s")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)

    cases_at_resume = _completed_cases(manifest)
    resumed = run_table1_campaign(
        seed=SEED, n_chips=N_CHIPS, checkpoint=str(checkpoint), resume=True
    )
    reference = run_table1_campaign(seed=SEED, n_chips=N_CHIPS)
    assert resumed.complete
    assert list(resumed.log) == list(reference.log)
    assert resumed.fresh_delays == reference.fresh_delays
    print(
        f"{'killed' if killed else 'completed'} with {cases_at_resume} "
        f"checkpointed cases; resumed log matches the uninterrupted run "
        f"({len(resumed.log)} records)"
    )

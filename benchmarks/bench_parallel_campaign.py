"""PERF — parallel campaign engine vs the sequential path.

Benchmarks the ``workers`` execution mode of ``run_table1_campaign``:

* times the sequential run and a multi-worker run of the same seed and
  asserts the merged result is bit-identical (the engine's contract —
  workers may only change wall-clock scheduling, never the physics);
* reports the trap-rate cache hit ratio of the instrumented run and the
  number of closed-form-compressed cycles, the two sequential
  optimisations that carry the campaign speedup.

Run directly for a smoke check (CI does)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_campaign.py -q
"""

import os
import time

from repro.lab.campaign import run_table1_campaign
from repro.obs import Tracer

#: Worker threads for the parallel leg (capped by chip count inside the
#: engine; more workers than cores is fine — numpy releases the GIL).
WORKERS = min(4, (os.cpu_count() or 1) + 1)

#: Chips in the timed comparison (the full paper bench).
N_CHIPS = 5


def test_bench_parallel_campaign(once):
    """Time sequential vs parallel and verify bit-identity of the merge."""

    def measure():
        seq_tracer, par_tracer = Tracer(), Tracer()
        start = time.perf_counter()
        sequential = run_table1_campaign(
            seed=0, n_chips=N_CHIPS, tracer=seq_tracer, workers=1
        )
        seq_wall = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_table1_campaign(
            seed=0, n_chips=N_CHIPS, tracer=par_tracer, workers=WORKERS
        )
        par_wall = time.perf_counter() - start
        return seq_wall, par_wall, sequential, parallel, par_tracer

    seq_wall, par_wall, sequential, parallel, tracer = once(measure)

    # The engine's contract: workers change scheduling, not results.
    assert list(sequential.log) == list(parallel.log)
    assert sequential.fresh_delays == parallel.fresh_delays

    metrics = tracer.metrics
    hits = metrics.value("bti.rate_cache.hits")
    partial = metrics.value("bti.rate_cache.partial_hits")
    misses = metrics.value("bti.rate_cache.misses")
    lookups = hits + partial + misses
    reuse = (hits + partial) / lookups if lookups else 0.0

    print(f"sequential: {seq_wall:.3f} s   parallel ({WORKERS} workers): "
          f"{par_wall:.3f} s   ratio {seq_wall / par_wall:.2f}x")
    print(f"rate cache: {int(hits)} full + {int(partial)} partial hits / "
          f"{int(lookups)} lookups ({100.0 * reuse:.1f} % reuse)")
    print(f"measurements: {len(parallel.log)} "
          f"({len(parallel.log) / par_wall:.1f}/s parallel)")

    assert len(parallel.log) > 500
    # The duty-averaged rate bases must be reused heavily even under
    # instrument jitter; a cold cache would make every lookup a miss.
    assert reuse > 0.3


def test_bench_cycle_compression(once):
    """Report the closed-form compression on a constant-condition loop."""
    from repro.core.knobs import OperatingPoint, RecoveryKnobs
    from repro.core.planner import CircadianPlanner
    from repro.fpga.chip import FpgaChip
    from repro.units import hours

    knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    planner = CircadianPlanner(knobs, OperatingPoint(temperature_c=110.0),
                               period=hours(30.0))
    n_cycles = 5000  # ~17 years of schedule

    def measure():
        tracer = Tracer()
        chip = FpgaChip("bench-compress", seed=0, tracer=tracer)
        start = time.perf_counter()
        trough = planner.fast_forward(chip, n_cycles)
        wall = time.perf_counter() - start
        return wall, trough, tracer

    wall, trough, tracer = once(measure)
    compressed = tracer.metrics.value("bti.cycles_compressed")
    print(f"fast-forward {n_cycles} cycles: {wall * 1e3:.1f} ms "
          f"({compressed:.0f} population-cycles compressed), "
          f"trough dTd {trough * 1e12:.1f} ps")
    assert trough > 0.0
    assert compressed >= n_cycles

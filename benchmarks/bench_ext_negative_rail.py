"""Extension — picking the sleep rail (paper Sec. 6.1, quantified).

Sweeps candidate negative rails on a stressed chip and trades the healing
benefit against the Sec. 6.1 costs — junction breakdown, GIDL leakage and
the charge-pump generator — locating the paper's "a modest negative
voltage, such as -0.3 V, can be enough" as the least-negative rail that
reaches deep rejuvenation inside the leakage budget.
"""

from repro.analysis.tables import Table
from repro.core.negative_rail import recommend_voltage, sweep_sleep_voltage
from repro.fpga.chip import FpgaChip
from repro.fpga.ring_oscillator import StressMode
from repro.units import celsius, hours


def run(seed: int = 5):
    chip = FpgaChip("rail", seed=seed)
    chip.apply_stress(hours(24.0), temperature=celsius(110.0), mode=StressMode.DC)
    points = sweep_sleep_voltage(
        chip, voltages=(0.0, -0.1, -0.2, -0.3, -0.4, -0.5, -0.7)
    )
    return points, recommend_voltage(points)


def test_bench_ext_negative_rail(once):
    """The cost/benefit sweep recommends the paper's -0.3 V."""
    points, recommended = once(run, seed=5)
    table = Table(
        "Sleep-rail sweep: 6 h recovery @110 degC after 24 h DC stress",
        ["rail (V)", "feasible", "recovery fraction", "GIDL (uW)", "generator (uW)"],
        fmt="{:.3f}",
    )
    for p in points:
        table.add_row(
            f"{p.sleep_voltage:+.1f}",
            p.feasible,
            p.recovery_fraction if p.feasible else float("nan"),
            p.gidl_power_watts * 1e6 if p.feasible else float("nan"),
            p.generator_power_watts * 1e6 if p.feasible else float("nan"),
        )
    table.print()
    print(f"recommended rail: {recommended:+.1f} V (paper: 'a modest negative "
          f"voltage, such as -0.3 V, can be enough')")
    assert recommended == -0.3
    # Beyond the junction limit is flagged, not silently simulated.
    assert not next(p for p in points if p.sleep_voltage == -0.7).feasible

"""FIG6 — recovered delay at 20/110 degC: the negative-voltage knob."""

from repro.experiments import fig6


def test_bench_fig6_recovery_voltage(once):
    """Regenerate both Fig. 6 panels (RD vs time, 0 V vs -0.3 V)."""
    result = once(fig6.run, seed=0)
    result.table().print()
    for label, curve in (
        ("20C 0V", result.panel_20c[0]),
        ("20C -0.3V", result.panel_20c[1]),
        ("110C 0V", result.panel_110c[0]),
        ("110C -0.3V", result.panel_110c[1]),
    ):
        print(f"{label:10s} model: {curve.validation.describe()}")
    assert result.negative_voltage_accelerates_at_20c
    assert result.negative_voltage_accelerates_at_110c

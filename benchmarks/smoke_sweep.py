"""SMOKE — dependability sweep: degrade gracefully, resume bit-identically.

Drives the full ``repro.dependability`` stack the way CI exercises it:

* a 2 faultload x 2 guard-mode grid (8 cells with the two alpha settings)
  runs under **process isolation** with one *injected* crash in a cell
  that would otherwise pass;
* the sweep must **complete on the survivors** — the crashed cell and the
  guard-off upset cells are recorded as degraded, never raised;
* one surviving cell's record is then deleted and the sweep **resumed**:
  only that cell re-runs, and its deterministic stats digest must be
  bit-identical to the first pass;
* the headline numbers land in ``BENCH_sweep.json`` for the rolling
  history check (``repro bench --input BENCH_sweep.json``).

Run directly (CI does)::

    PYTHONPATH=src python -m pytest benchmarks/smoke_sweep.py -q
"""

import json
import time
from pathlib import Path

from repro.dependability import (
    LifetimeSettings,
    SweepRunner,
    SweepSpec,
    analyze_sweep,
)
from repro.report import build_dependability_report

ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = ROOT / "BENCH_sweep.json"

SEED = 7

#: The cell the crash is injected into: cell-0000 is the zero-faultload
#: clamp cell, which completes cleanly when not sabotaged.
CRASHED_CELL = "cell-0000"


def smoke_spec() -> SweepSpec:
    """The CI smoke grid: 2 fault rates x 2 guard modes (x 2 alphas)."""
    return SweepSpec(
        name="smoke-sweep",
        engine="table1",
        n_chips=2,
        fault_rates=(0.0, 24.0),
        upset_probs=(0.25,),
        guard_modes=("clamp", "off"),
        alphas=(1.0, 4.0),
        seeds=(SEED,),
        lifetime=LifetimeSettings(budget_fraction=0.005, horizon_hours=24.0),
    )


def test_smoke_sweep(tmp_path):
    spec = smoke_spec()
    directory = tmp_path / "sweep"

    start = time.perf_counter()
    runner = SweepRunner(
        spec,
        directory,
        isolation="process",
        timeout_s=300.0,
        cell_retries=1,
        inject={CRASHED_CELL: "crash"},
    )
    result = runner.run()
    wall_s = time.perf_counter() - start

    # Graceful degradation: the sweep completed with every cell recorded.
    assert len(result.outcomes) == spec.n_cells == 8
    by_id = {outcome.cell_id: outcome for outcome in result.outcomes}
    crashed = by_id[CRASHED_CELL]
    assert not crashed.ok and "worker died" in crashed.error
    survivors = [outcome for outcome in result.outcomes if outcome.ok]
    assert survivors, "sweep must complete on the surviving cells"
    # The guard-off cells under upsets fail by design (NaN upsets abort
    # an unguarded campaign); every clamp cell except the sabotaged one
    # must survive.
    for cell, outcome in zip(result.cells, result.outcomes):
        if cell.guard_mode == "clamp" and cell.cell_id != CRASHED_CELL:
            assert outcome.ok, f"{cell.cell_id} degraded: {outcome.error}"

    # Resume: delete one surviving cell's record, re-run only that cell,
    # and require a bit-identical stats digest.
    victim = survivors[0]
    (directory / "cells" / f"{victim.cell_id}.json").unlink()
    resumed = SweepRunner.resume(
        directory,
        isolation="process",
        timeout_s=300.0,
        cell_retries=1,
        inject={CRASHED_CELL: "crash"},
    )
    resumed_by_id = {outcome.cell_id: outcome for outcome in resumed.outcomes}
    assert resumed_by_id[victim.cell_id].digest == victim.digest
    for outcome in survivors:
        assert resumed_by_id[outcome.cell_id].digest == outcome.digest

    # The report must render CIs and the Pareto frontier from this grid.
    analysis = analyze_sweep(resumed)
    report = build_dependability_report(analysis)
    frontier = [p for p in report.data["pareto"] if p["on_frontier"]]
    assert frontier, "smoke sweep must yield a non-empty Pareto frontier"
    assert report.data["confidence"]["cell_failure_rate_wilson95"]
    report.write(tmp_path / "sweep-report.html")

    entry = {
        "bench": "smoke_sweep.test_smoke_sweep",
        "seed": SEED,
        "n_chips": spec.n_chips,
        "cells": len(result.outcomes),
        "ok_cells": len(survivors),
        "degraded_cells": len(result.outcomes) - len(survivors),
        "pareto_points": len(report.data["pareto"]),
        "frontier_points": len(frontier),
        "sweep_wall_s": round(wall_s, 3),
    }
    BENCH_PATH.write_text(json.dumps(entry, indent=2) + "\n")

    print(
        f"smoke sweep: {entry['ok_cells']}/{entry['cells']} cells completed "
        f"({entry['degraded_cells']} degraded, incl. injected crash) in "
        f"{wall_s:.2f} s; resume of {victim.cell_id} bit-identical; "
        f"{len(frontier)} frontier point(s)"
    )
    print(f"baseline written to {BENCH_PATH.name}")

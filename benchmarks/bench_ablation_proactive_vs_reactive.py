"""Ablation — proactive vs reactive recovery scheduling (paper Sec. 2.2).

The paper argues proactive scheduling beats reactive: reactive recovery
triggers only after damage accumulates, so the chip spends more of its
life in an aged state and the expected (time-averaged) delay shift is
worse.  The ablation runs both on identical chips at equal delivered work
and compares the time-averaged and final shifts.
"""

import numpy as np

from repro.analysis.tables import Table
from repro.core.knobs import OperatingPoint, RecoveryKnobs
from repro.core.policies import ProactivePolicy, ReactivePolicy
from repro.core.rejuvenator import Rejuvenator
from repro.fpga.chip import FpgaChip
from repro.units import hours, nanoseconds


def run_policies(seed: int = 0):
    """Both policies on identically-seeded chips; equal delivered work."""
    operating = OperatingPoint(temperature_c=110.0)
    knobs = RecoveryKnobs(alpha=4.0, sleep_voltage=-0.3, sleep_temperature_c=110.0)
    total_active = hours(48.0)

    proactive_chip = FpgaChip("pro", seed=seed)
    rejuvenator = Rejuvenator(proactive_chip, operating, max_segment=hours(1.5))
    proactive = rejuvenator.run(ProactivePolicy(knobs, period=hours(7.5)), total_active)

    reactive_chip = FpgaChip("rea", seed=seed)
    rejuvenator = Rejuvenator(reactive_chip, operating, max_segment=hours(1.5))
    # The 4.4 ns trigger makes the reactive policy spend the *same* sleep
    # budget (~20 % of wall clock) as the alpha = 4 proactive schedule, so
    # the comparison isolates scheduling, not sleep quantity.
    policy = ReactivePolicy(
        knobs, trigger_shift=nanoseconds(4.4), recovery_duration=hours(6.0),
        segment=hours(1.5),
    )
    reactive = rejuvenator.run(policy, total_active)
    return proactive, reactive


def time_averaged_shift(trajectory) -> float:
    """Work-weighted average delay shift over the run."""
    return float(np.trapezoid(trajectory.delay_shifts, trajectory.active_times)
                 / trajectory.active_times[-1])


def test_bench_ablation_proactive_vs_reactive(once):
    """Proactive scheduling yields a better expected (average) shift."""
    proactive, reactive = once(run_policies, seed=0)
    table = Table(
        "Ablation — proactive vs reactive recovery (equal work, 48 h active)",
        ["policy", "avg dTd (ns)", "peak dTd (ns)", "final dTd (ns)", "sleep fraction"],
        fmt="{:.2f}",
    )
    for name, t in (("proactive", proactive), ("reactive", reactive)):
        table.add_row(
            name,
            time_averaged_shift(t) * 1e9,
            t.peak_shift * 1e9,
            t.final_shift * 1e9,
            t.sleep_fraction(),
        )
    table.print()
    # Sleep budgets must be comparable for the comparison to mean anything.
    assert abs(proactive.sleep_fraction() - reactive.sleep_fraction()) < 0.08
    # The paper's argument: at the same sleep budget the proactive system
    # operates longer in a "refreshed" mode — better expected (average)
    # shift — and never lets the worst-case shift run past the trigger.
    assert time_averaged_shift(proactive) < time_averaged_shift(reactive)
    assert proactive.peak_shift < reactive.peak_shift

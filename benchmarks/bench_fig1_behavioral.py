"""FIG1 — behavioural stress/recovery illustration."""

import numpy as np

from repro.analysis.tables import Table
from repro.experiments import fig1


def test_bench_fig1_behavioral(once):
    """Generate the Fig. 1 saw-tooth from the first-order model."""
    result = once(fig1.run, n_cycles=3)
    table = Table(
        "Fig. 1 — behavioural dVth trace (stress 24 h / sleep 6 h)",
        ["cycle", "peak dVth (mV)", "trough dVth (mV)", "residue growth (mV)"],
        fmt="{:.3f}",
    )
    previous = 0.0
    for i, (peak, trough) in enumerate(zip(result.peaks, result.troughs)):
        table.add_row(i + 1, peak * 1e3, trough * 1e3, (trough - previous) * 1e3)
        previous = trough
    table.print()
    assert result.residual_accumulates
    assert np.all(result.troughs < result.peaks)
